//! Property-based tests for the graph substrate.

use cp_graph::apsp::full_matrix;
use cp_graph::bfs::bfs;
use cp_graph::builder::graph_from_edges;
use cp_graph::components::components;
use cp_graph::diameter::{diameter_double_sweep, diameter_exact};
use cp_graph::dijkstra::dijkstra;
use cp_graph::repair::snapshot_delta;
use cp_graph::rowpack::{fits_u16, pack_u16_into, widen_u16_into, RowRef, INF_U16};
use cp_graph::temporal::TemporalGraph;
use cp_graph::varint::{decode_u32, encode_u32, encoded_len, MAX_VARINT_BYTES};
use cp_graph::{CompressedCsr, GraphView, NodeId, OverlayGraph, INF};
use proptest::prelude::*;

/// Strategy: a random edge list over up to `n` nodes.
fn edge_list(n: u32, max_edges: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..=n).prop_flat_map(move |nodes| {
        let edges = prop::collection::vec((0..nodes, 0..nodes), 0..max_edges);
        (Just(nodes as usize), edges)
    })
}

proptest! {
    #[test]
    fn builder_invariants_hold((n, edges) in edge_list(40, 120)) {
        let g = graph_from_edges(n, &edges);
        prop_assert_eq!(g.check_invariants(), Ok(()));
        // Handshake lemma.
        let degree_sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn bfs_distances_are_symmetric((n, edges) in edge_list(24, 60)) {
        let g = graph_from_edges(n, &edges);
        let matrix = full_matrix(&g, 2);
        for (u, row) in matrix.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                prop_assert_eq!(duv, matrix[v][u], "asymmetry at ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn bfs_satisfies_triangle_inequality_over_edges((n, edges) in edge_list(24, 60)) {
        // For every edge (a, b): |d(s, a) - d(s, b)| <= 1.
        let g = graph_from_edges(n, &edges);
        let dist = bfs(&g, NodeId(0));
        for (a, b) in g.edges() {
            let (da, db) = (dist[a.index()], dist[b.index()]);
            match (da == INF, db == INF) {
                (false, false) => {
                    prop_assert!(da.abs_diff(db) <= 1, "edge ({a}, {b}): {da} vs {db}")
                }
                (true, true) => {}
                _ => prop_assert!(false, "edge spans reachable/unreachable"),
            }
        }
    }

    #[test]
    fn bfs_reachability_matches_components((n, edges) in edge_list(30, 50)) {
        let g = graph_from_edges(n, &edges);
        let comps = components(&g);
        let dist = bfs(&g, NodeId(0));
        for (v, &dv) in dist.iter().enumerate() {
            let same = comps.connected(NodeId(0), NodeId::new(v));
            prop_assert_eq!(dv != INF, same, "node {}", v);
        }
    }

    #[test]
    fn dijkstra_equals_bfs_on_unit_weights((n, edges) in edge_list(24, 60)) {
        let g = graph_from_edges(n, &edges);
        for s in [0usize, n / 2, n - 1] {
            prop_assert_eq!(dijkstra(&g, NodeId::new(s)), bfs(&g, NodeId::new(s)));
        }
    }

    #[test]
    fn double_sweep_is_a_lower_bound((n, edges) in edge_list(24, 60)) {
        let g = graph_from_edges(n, &edges);
        let exact = diameter_exact(&g, 2);
        for s in 0..n.min(5) {
            prop_assert!(diameter_double_sweep(&g, NodeId::new(s)) <= exact);
        }
    }

    #[test]
    fn snapshots_grow_monotonically((n, edges) in edge_list(24, 60)) {
        let pairs: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|&(u, v)| (NodeId(u), NodeId(v)))
            .collect();
        let t = TemporalGraph::from_sequence(n, pairs);
        let cuts = [0.0, 0.25, 0.5, 0.75, 1.0];
        for w in cuts.windows(2) {
            let g_small = t.snapshot_at_fraction(w[0]);
            let g_big = t.snapshot_at_fraction(w[1]);
            prop_assert!(g_small.num_edges() <= g_big.num_edges());
            for (u, v) in g_small.edges() {
                prop_assert!(g_big.has_edge(u, v));
            }
        }
    }

    #[test]
    fn distances_never_increase_under_edge_addition((n, edges) in edge_list(20, 50)) {
        prop_assume!(edges.len() >= 2);
        let split = edges.len() / 2;
        let g1 = graph_from_edges(n, &edges[..split]);
        let g2 = graph_from_edges(n, &edges);
        let d1 = bfs(&g1, NodeId(0));
        let d2 = bfs(&g2, NodeId(0));
        for v in 0..n {
            if d1[v] != INF {
                prop_assert!(d2[v] <= d1[v], "distance to {} grew", v);
            }
        }
    }

    #[test]
    fn u16_row_packing_roundtrips(raw in prop::collection::vec((0u32..=u32::from(u16::MAX - 1), any::<bool>()), 0..200)) {
        // Any mix of packable finite distances (0..=65534, including the
        // sentinel boundary 65534) and INF holes survives pack → widen.
        let row: Vec<u32> = raw
            .iter()
            .map(|&(d, inf)| if inf { INF } else { d })
            .collect();
        let mut packed = Vec::new();
        pack_u16_into(&row, &mut packed);
        let mut widened = Vec::new();
        widen_u16_into(&packed, &mut widened);
        prop_assert_eq!(&widened, &row);
        // Element reads through RowRef agree at both widths, sentinel
        // mapping included.
        let r16 = RowRef::U16(&packed);
        let r32 = RowRef::U32(&row);
        prop_assert_eq!(r16.len(), r32.len());
        for i in 0..row.len() {
            prop_assert_eq!(r16.get(i), r32.get(i), "element {}", i);
            prop_assert_eq!(packed[i] == INF_U16, row[i] == INF);
        }
        prop_assert_eq!(r16.to_u32_vec(), row);
    }

    #[test]
    fn bfs_rows_of_small_graphs_always_pack((n, edges) in edge_list(40, 120)) {
        // Every unweighted graph small enough for u16 ids packs: real BFS
        // rows never reach the sentinel.
        let g = graph_from_edges(n, &edges);
        prop_assert!(fits_u16(&g));
        let row = bfs(&g, NodeId(0));
        let mut packed = Vec::new();
        pack_u16_into(&row, &mut packed);
        let mut widened = Vec::new();
        widen_u16_into(&packed, &mut widened);
        prop_assert_eq!(widened, row);
    }

    #[test]
    fn connected_pair_counts_are_consistent((n, edges) in edge_list(30, 40)) {
        let g = graph_from_edges(n, &edges);
        let comps = components(&g);
        let connected = comps.connected_pairs();
        let not_connected = comps.not_connected_active_pairs(&g);
        let active = g.num_active_nodes() as u64;
        // connected_pairs counts ALL nodes including isolated singletons
        // (each contributing 0), so the two partitions of active pairs add
        // up when no isolated node has a neighbor.
        prop_assert!(connected + not_connected >= active * active.saturating_sub(1) / 2);
    }
}

/// Brute-force node betweenness by enumerating shortest paths via BFS
/// layers (exponential in the worst case, fine at test sizes).
fn brute_betweenness(g: &cp_graph::Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut score = vec![0.0f64; n];
    // For every ordered pair (s, t), count shortest paths through each node.
    for s in 0..n {
        let ds = bfs(g, NodeId::new(s));
        for t in 0..n {
            if t == s || ds[t] == INF {
                continue;
            }
            // sigma[v]: number of shortest s->v paths, via BFS order DP.
            let mut order: Vec<usize> = (0..n).filter(|&v| ds[v] != INF).collect();
            order.sort_by_key(|&v| ds[v]);
            let mut sigma = vec![0.0f64; n];
            sigma[s] = 1.0;
            for &v in &order {
                if v == s {
                    continue;
                }
                for &w in g.neighbors(NodeId::new(v)) {
                    if ds[w.index()] + 1 == ds[v] {
                        sigma[v] += sigma[w.index()];
                    }
                }
            }
            // paths through x: sigma_sx * sigma_xt / sigma_st, for x interior.
            let dt = bfs(g, NodeId::new(t));
            let mut sigma_t = vec![0.0f64; n];
            sigma_t[t] = 1.0;
            let mut order_t: Vec<usize> = (0..n).filter(|&v| dt[v] != INF).collect();
            order_t.sort_by_key(|&v| dt[v]);
            for &v in &order_t {
                if v == t {
                    continue;
                }
                for &w in g.neighbors(NodeId::new(v)) {
                    if dt[w.index()] + 1 == dt[v] {
                        sigma_t[v] += sigma_t[w.index()];
                    }
                }
            }
            for x in 0..n {
                if x == s || x == t {
                    continue;
                }
                if ds[x] != INF && dt[x] != INF && ds[x] + dt[x] == ds[t] {
                    score[x] += sigma[x] * sigma_t[x] / sigma[t];
                }
            }
        }
    }
    // Ordered pairs counted both directions; halve to match unordered.
    score.iter_mut().for_each(|v| *v *= 0.5);
    score
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn brandes_matches_brute_force((n, edges) in edge_list(10, 20)) {
        use cp_graph::betweenness::betweenness_exact;
        let g = graph_from_edges(n, &edges);
        let fast = betweenness_exact(&g, 2);
        let brute = brute_betweenness(&g);
        for (v, &expected) in brute.iter().enumerate() {
            prop_assert!(
                (fast.node[v] - expected).abs() < 1e-6,
                "node {}: brandes {} vs brute {}",
                v,
                fast.node[v],
                expected
            );
        }
    }

    #[test]
    fn edge_betweenness_sums_to_path_lengths((n, edges) in edge_list(10, 20)) {
        // Sum over edges of edge betweenness equals the sum over connected
        // pairs of their distance (every shortest path contributes its
        // length in edge traversals, split across tied paths).
        use cp_graph::betweenness::betweenness_exact;
        let g = graph_from_edges(n, &edges);
        let fast = betweenness_exact(&g, 2);
        let edge_total: f64 = fast.edge.iter().sum();
        let mut distance_total = 0.0f64;
        for u in 0..n {
            let d = bfs(&g, NodeId::new(u));
            for &dv in d.iter().skip(u + 1) {
                if dv != INF {
                    distance_total += dv as f64;
                }
            }
        }
        prop_assert!(
            (edge_total - distance_total).abs() < 1e-6,
            "edge sum {} vs distance sum {}",
            edge_total,
            distance_total
        );
    }
}

/// Collects `u`'s neighbors through the [`GraphView`] callback interface.
fn view_neighbors<V: GraphView>(view: &V, u: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    view.for_each_neighbor(u, |v| out.push(v));
    out
}

proptest! {
    #[test]
    fn varint_streams_roundtrip(values in prop::collection::vec(0u32..=u32::MAX, 0..200)) {
        let mut buf = Vec::new();
        for &x in &values {
            let before = buf.len();
            encode_u32(x, &mut buf);
            prop_assert_eq!(buf.len() - before, encoded_len(x), "length of {}", x);
            prop_assert!(buf.len() - before <= MAX_VARINT_BYTES);
        }
        let mut pos = 0usize;
        for &x in &values {
            prop_assert_eq!(decode_u32(&buf, &mut pos), x);
        }
        prop_assert_eq!(pos, buf.len(), "trailing bytes after decode");
    }

    /// The gap-compressed CSR is a pure re-encoding: node/arc counts,
    /// degrees, neighbor order, and whole BFS rows match the full store on
    /// any graph, and the byte payload never exceeds the `u32` targets it
    /// replaces.
    #[test]
    fn compressed_csr_matches_full_store((n, edges) in edge_list(40, 120)) {
        let g = graph_from_edges(n, &edges);
        let c = CompressedCsr::from_graph(&g);
        prop_assert_eq!(c.num_nodes(), g.num_nodes());
        prop_assert_eq!(c.num_arcs(), 2 * g.num_edges());
        for u in g.nodes() {
            prop_assert_eq!(c.degree(u), g.degree(u), "degree of {}", u);
            prop_assert_eq!(
                view_neighbors(&c, u),
                g.neighbors(u).to_vec(),
                "neighbors of {}",
                u
            );
        }
        for s in [0usize, n / 2, n - 1] {
            prop_assert_eq!(bfs(&c, NodeId::new(s)), bfs(&g, NodeId::new(s)));
        }
    }

    /// On a randomly grown snapshot pair, the overlay over `G_t1` plus the
    /// inserted delta *is* `G_t2`: same degrees, same sorted adjacency,
    /// same BFS rows as both the full and the compressed `G_t2` stores —
    /// and `to_delta()` reproduces the slow containment-scan delta
    /// exactly.
    #[test]
    fn overlay_matches_grown_snapshot((n, edges) in edge_list(30, 80)) {
        prop_assume!(edges.len() >= 2);
        let split = edges.len() / 2;
        let g1 = graph_from_edges(n, &edges[..split]);
        let g2 = graph_from_edges(n, &edges);
        let delta = snapshot_delta(&g1, &g2);
        prop_assert!(delta.growth_only, "prefix pair must be growth-only");
        let overlay = OverlayGraph::from_delta(&g1, delta.inserted.clone(), false);
        let c2 = CompressedCsr::from_graph(&g2);
        prop_assert_eq!(overlay.num_edges(), g2.num_edges());
        prop_assert_eq!(overlay.num_nodes(), g2.num_nodes());
        prop_assert_eq!(
            overlay.shared_arcs() + overlay.extra_arcs(),
            2 * g2.num_edges()
        );
        for u in g2.nodes() {
            prop_assert_eq!(overlay.degree(u), g2.degree(u), "degree of {}", u);
            let expected = g2.neighbors(u).to_vec();
            prop_assert_eq!(view_neighbors(&overlay, u), expected.clone(), "overlay {}", u);
            prop_assert_eq!(view_neighbors(&c2, u), expected, "compressed {}", u);
        }
        for s in [0usize, n - 1] {
            let full_row = bfs(&g2, NodeId::new(s));
            prop_assert_eq!(bfs(&overlay, NodeId::new(s)), full_row.clone());
            prop_assert_eq!(bfs(&c2, NodeId::new(s)), full_row);
        }
        // The O(Δ) fast path: reading the delta back off the overlay is
        // bit-identical to the O(E) containment scan.
        prop_assert_eq!(overlay.to_delta(), delta);
    }

    /// Overlay construction is a pure function of its inputs: two builds
    /// from the same base and delta agree on every observable.
    #[test]
    fn overlay_build_is_deterministic((n, edges) in edge_list(30, 80)) {
        prop_assume!(edges.len() >= 2);
        let split = edges.len() / 2;
        let g1 = graph_from_edges(n, &edges[..split]);
        let g2 = graph_from_edges(n, &edges);
        let delta = snapshot_delta(&g1, &g2);
        prop_assert!(delta.growth_only);
        let a = OverlayGraph::from_delta(&g1, delta.inserted.clone(), false);
        let b = OverlayGraph::from_delta(&g1, delta.inserted.clone(), false);
        prop_assert_eq!(a.shared_arcs(), b.shared_arcs());
        prop_assert_eq!(a.extra_arcs(), b.extra_arcs());
        prop_assert_eq!(a.heap_bytes(), b.heap_bytes());
        prop_assert_eq!(a.to_delta(), b.to_delta());
        for u in g2.nodes() {
            prop_assert_eq!(view_neighbors(&a, u), view_neighbors(&b, u), "node {}", u);
        }
    }
}

proptest! {
    /// A forward-only cursor over a random temporal stream cuts snapshots
    /// bit-identical to the from-scratch builder path at every prefix —
    /// including edge-id assignment (checked via `Graph` equality, which
    /// covers `arc_edge`).
    #[test]
    fn prefix_cursor_matches_builder_snapshots(
        (n, edges) in edge_list(30, 80),
        cuts in prop::collection::vec(0usize..100, 1..6),
    ) {
        let pairs: Vec<_> = edges
            .iter()
            .map(|&(u, v)| (NodeId(u), NodeId(v)))
            .collect();
        let t = TemporalGraph::from_sequence(n, pairs);
        let mut cuts = cuts;
        cuts.sort_unstable();
        let mut cursor = t.cursor();
        for &cut in &cuts {
            let count = cut.min(t.num_events());
            cursor.advance_to_prefix(count);
            // Reference: fold the same prefix through GraphBuilder.
            let mut b = cp_graph::GraphBuilder::with_capacity(n, count);
            for e in &t.events()[..count] {
                b.add_edge(e.u, e.v);
            }
            prop_assert_eq!(cursor.materialize(), b.build(), "prefix {}", count);
        }
    }
}
