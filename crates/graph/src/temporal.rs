//! Timestamped edge streams and snapshot extraction.
//!
//! The paper models an evolving network as a sequence of slices of node and
//! edge insertions; `G_t` aggregates all slices up to `t`. A
//! [`TemporalGraph`] is exactly that: an ordered stream of timestamped edges
//! over a fixed node universe, from which prefix snapshots are cut either by
//! timestamp or by edge fraction ("the first snapshot contains 80 percent of
//! the edges", §5.1).

use crate::graph::{Graph, NodeId};
use crate::overlay::OverlayGraph;
use crate::repair::InsertedEdge;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An edge insertion event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEdge {
    /// One endpoint.
    pub u: NodeId,
    /// Other endpoint.
    pub v: NodeId,
    /// Insertion time (any monotone counter; ties allowed).
    pub time: u64,
}

/// An evolving graph: a fixed node universe plus a time-ordered edge stream.
///
/// Duplicate edge announcements are allowed in the stream (snapshots take
/// the set union); self-loops are dropped at snapshot time.
///
/// ```
/// use cp_graph::{NodeId, TemporalGraph};
///
/// let t = TemporalGraph::from_sequence(
///     3,
///     vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2)), (NodeId(0), NodeId(2))],
/// );
/// let (g1, g2) = t.snapshot_pair(0.5, 1.0);
/// assert_eq!(g1.num_edges(), 2); // ceil(0.5 * 3) = first two insertions
/// assert_eq!(g2.num_edges(), 3); // the whole triangle
/// assert_eq!(
///     TemporalGraph::new_edges_between(&g1, &g2),
///     vec![(NodeId(0), NodeId(2))]
/// );
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalGraph {
    num_nodes: usize,
    events: Vec<TimedEdge>,
}

impl TemporalGraph {
    /// Creates a temporal graph from an event list; events are sorted by
    /// time (stable, so same-time events keep their given order).
    pub fn new(num_nodes: usize, mut events: Vec<TimedEdge>) -> Self {
        for e in &events {
            assert!(
                e.u.index() < num_nodes && e.v.index() < num_nodes,
                "event endpoint outside node universe"
            );
        }
        events.sort_by_key(|e| e.time);
        TemporalGraph { num_nodes, events }
    }

    /// Creates a temporal graph where event order *is* the timestamp.
    pub fn from_sequence(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let events = edges
            .into_iter()
            .enumerate()
            .map(|(i, (u, v))| TimedEdge {
                u,
                v,
                time: i as u64,
            })
            .collect();
        TemporalGraph::new(num_nodes, events)
    }

    /// Size of the node universe.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total number of edge events (including duplicates).
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// The time-ordered event stream.
    pub fn events(&self) -> &[TimedEdge] {
        &self.events
    }

    /// Snapshot containing every edge inserted at time `<= t`.
    pub fn snapshot_at(&self, t: u64) -> Graph {
        let end = self.events.partition_point(|e| e.time <= t);
        self.snapshot_of_prefix(end)
    }

    /// Snapshot containing the first `ceil(fraction * num_events)` events.
    ///
    /// `fraction` is clamped to `[0, 1]`. This is the paper's snapshot
    /// convention ("`G_t1` contains 80 percent of the edges, `G_t2` the
    /// entire graph").
    pub fn snapshot_at_fraction(&self, fraction: f64) -> Graph {
        let f = fraction.clamp(0.0, 1.0);
        let end = (f * self.events.len() as f64).ceil() as usize;
        self.snapshot_of_prefix(end.min(self.events.len()))
    }

    /// Snapshot of the first `count` events.
    pub fn snapshot_of_prefix(&self, count: usize) -> Graph {
        let mut cursor = self.cursor();
        cursor.advance_to_prefix(count);
        cursor.materialize()
    }

    /// A forward-only cursor over the event stream, positioned before the
    /// first event. Use it to cut a *sequence* of growing snapshots without
    /// re-folding the shared prefix each time.
    pub fn cursor(&self) -> PrefixCursor<'_> {
        PrefixCursor {
            stream: self,
            consumed: 0,
            acc: GraphAccumulator::new(self.num_nodes),
        }
    }

    /// The pair of snapshots `(G_t1, G_t2)` at the given edge fractions;
    /// convenience for the standard experimental setup. A single cursor
    /// cuts both snapshots, so the `f1` prefix is folded only once.
    pub fn snapshot_pair(&self, f1: f64, f2: f64) -> (Graph, Graph) {
        assert!(f1 <= f2, "first snapshot must precede second");
        let mut cursor = self.cursor();
        cursor.advance_to_fraction(f1);
        let g1 = cursor.materialize();
        cursor.advance_to_fraction(f2);
        (g1, cursor.materialize())
    }

    /// Edges present in the second snapshot but not the first, as
    /// normalized `(min, max)` pairs, de-duplicated. These are the *new*
    /// edges whose endpoints form the Incidence baseline's active set.
    pub fn new_edges_between(g1: &Graph, g2: &Graph) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for u in g2.nodes() {
            for &v in g2.neighbors(u) {
                if u < v && !g1.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }
}

/// Incremental snapshot assembler: a growing *set* of normalized edges plus
/// per-node sorted adjacency, from which a CSR [`Graph`] can be cut at any
/// moment in `O(V + E)` without re-sorting the edge list.
///
/// Produces graphs **identical** (same edge-id assignment, same adjacency
/// order) to feeding the same events through [`GraphBuilder`]: edge ids are
/// the rank of the normalized `(min, max)` pair in sorted order, and
/// adjacency lists are sorted by target — both maintained incrementally
/// here. Only unweighted graphs are supported, matching [`TimedEdge`].
///
/// [`GraphBuilder`]: crate::builder::GraphBuilder
#[derive(Clone, Debug, Default)]
pub struct GraphAccumulator {
    num_nodes: usize,
    /// Normalized `(min, max)` edge set; iteration order defines edge ids.
    edges: BTreeSet<(NodeId, NodeId)>,
    /// Per-node adjacency, kept sorted by target.
    adj: Vec<Vec<NodeId>>,
    /// Accepted insertions in arrival order (normalized). Because the
    /// stream is insert-only this log *is* the delta between any two
    /// checkpoints, which backs the O(Δ) overlay cut of
    /// [`Self::materialize_overlay`].
    log: Vec<(NodeId, NodeId)>,
}

impl GraphAccumulator {
    /// Creates an empty accumulator over a universe of `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphAccumulator {
            num_nodes,
            edges: BTreeSet::new(),
            adj: vec![Vec::new(); num_nodes],
            log: Vec::new(),
        }
    }

    /// Seeds an accumulator with every edge of an existing snapshot.
    pub fn from_graph(g: &Graph) -> Self {
        let mut acc = GraphAccumulator::new(g.num_nodes());
        for (u, v) in g.edges() {
            acc.insert_edge(u, v);
        }
        acc
    }

    /// Size of the node universe.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct edges accumulated so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the undirected edge `{u, v}` is already present.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&(a, b))
    }

    /// Inserts the undirected edge `{u, v}`. Returns `true` if the edge is
    /// new; self-loops and duplicates are ignored and return `false`.
    ///
    /// # Panics
    /// Panics if an endpoint is outside the node universe.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.num_nodes && v.index() < self.num_nodes,
            "edge ({u:?}, {v:?}) outside node universe of size {}",
            self.num_nodes
        );
        if u == v {
            return false;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if !self.edges.insert((a, b)) {
            return false;
        }
        let slot = &mut self.adj[a.index()];
        let pos = slot.binary_search(&b).unwrap_err();
        slot.insert(pos, b);
        let slot = &mut self.adj[b.index()];
        let pos = slot.binary_search(&a).unwrap_err();
        slot.insert(pos, a);
        self.log.push((a, b));
        true
    }

    /// Number of accepted insertions so far. Use the returned value as a
    /// checkpoint `mark` for [`Self::edges_since`] /
    /// [`Self::materialize_overlay`]; it always equals
    /// [`Self::num_edges`] (the log holds accepted insertions only).
    pub fn insertions(&self) -> usize {
        self.log.len()
    }

    /// The edges accepted since checkpoint `mark` (a prior
    /// [`Self::insertions`] value), normalized, in arrival order.
    pub fn edges_since(&self, mark: usize) -> &[(NodeId, NodeId)] {
        &self.log[mark..]
    }

    /// Cuts the current edge set as an [`OverlayGraph`] over `base`, the
    /// snapshot this accumulator materialized at checkpoint `mark`. Costs
    /// O(Δ log Δ) — no CSR rebuild, no containment scan — because the
    /// insert-only log *is* the delta.
    ///
    /// # Panics
    /// Debug-asserts that `base` matches the checkpoint (same universe,
    /// edge count consistent with the log suffix).
    pub fn materialize_overlay<'g>(&self, base: &'g Graph, mark: usize) -> OverlayGraph<'g> {
        debug_assert_eq!(base.num_nodes(), self.num_nodes, "universe mismatch");
        debug_assert_eq!(
            base.num_edges() + (self.log.len() - mark),
            self.edges.len(),
            "base is not the checkpoint-{mark} snapshot"
        );
        let mut inserted: Vec<InsertedEdge> =
            self.log[mark..].iter().map(|&(a, b)| (a, b, 1)).collect();
        inserted.sort_unstable();
        OverlayGraph::from_delta(base, inserted, false)
    }

    /// Cuts the current edge set as a CSR snapshot.
    pub fn materialize(&self) -> Graph {
        let n = self.num_nodes;
        let m = self.edges.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for slot in &self.adj {
            acc += slot.len();
            offsets.push(acc);
        }
        let mut targets = Vec::with_capacity(2 * m);
        for slot in &self.adj {
            targets.extend_from_slice(slot);
        }
        // Edge ids are the rank of the (min, max) pair in sorted order —
        // exactly the BTreeSet iteration order — so each arc's edge id is
        // found by locating the opposite endpoint in the (sorted) adjacency.
        let mut arc_edge = vec![0u32; 2 * m];
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            let e32 = u32::try_from(e).expect("edge count exceeds u32");
            let pa = offsets[a.index()]
                + self.adj[a.index()]
                    .binary_search(&b)
                    .expect("adjacency out of sync with edge set");
            arc_edge[pa] = e32;
            let pb = offsets[b.index()]
                + self.adj[b.index()]
                    .binary_search(&a)
                    .expect("adjacency out of sync with edge set");
            arc_edge[pb] = e32;
        }
        let g = Graph {
            offsets,
            targets,
            arc_edge,
            weights: None,
            num_edges: m,
        };
        debug_assert_eq!(g.check_invariants(), Ok(()));
        g
    }
}

/// A forward-only cursor over a [`TemporalGraph`]'s event stream.
///
/// The cursor folds events into a [`GraphAccumulator`] exactly once, so a
/// sequence of `k` growing snapshot cuts costs `O(E log d)` total insertion
/// work plus `O(V + E)` per [`materialize`](Self::materialize) — instead of
/// the former `O(E log E)` rebuild per cut.
pub struct PrefixCursor<'a> {
    stream: &'a TemporalGraph,
    consumed: usize,
    acc: GraphAccumulator,
}

impl PrefixCursor<'_> {
    /// Number of events folded into the cursor so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Advances the cursor so the first `count` events are folded in.
    /// `count` is clamped to the stream length.
    ///
    /// # Panics
    /// Panics if `count` would move the cursor backwards.
    pub fn advance_to_prefix(&mut self, count: usize) {
        let count = count.min(self.stream.num_events());
        assert!(
            count >= self.consumed,
            "prefix cursor is forward-only: at {}, asked for {count}",
            self.consumed
        );
        for e in &self.stream.events()[self.consumed..count] {
            self.acc.insert_edge(e.u, e.v);
        }
        self.consumed = count;
    }

    /// Advances the cursor past every event with `time <= t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the cursor's current position.
    pub fn advance_to_time(&mut self, t: u64) {
        let end = self.stream.events().partition_point(|e| e.time <= t);
        self.advance_to_prefix(end);
    }

    /// Advances the cursor to the first `ceil(fraction * num_events)`
    /// events, matching [`TemporalGraph::snapshot_at_fraction`].
    ///
    /// # Panics
    /// Panics if the fraction precedes the cursor's current position.
    pub fn advance_to_fraction(&mut self, fraction: f64) {
        let f = fraction.clamp(0.0, 1.0);
        let end = (f * self.stream.num_events() as f64).ceil() as usize;
        self.advance_to_prefix(end.min(self.stream.num_events()));
    }

    /// Cuts the snapshot of everything consumed so far.
    pub fn materialize(&self) -> Graph {
        self.acc.materialize()
    }

    /// Number of accepted insertions so far; a checkpoint for
    /// [`Self::materialize_overlay`].
    pub fn insertions(&self) -> usize {
        self.acc.insertions()
    }

    /// Cuts everything consumed so far as an [`OverlayGraph`] over `base`,
    /// the snapshot this cursor materialized at checkpoint `mark` (a prior
    /// [`Self::insertions`] value). O(Δ log Δ); see
    /// [`GraphAccumulator::materialize_overlay`].
    pub fn materialize_overlay<'g>(&self, base: &'g Graph, mark: usize) -> OverlayGraph<'g> {
        self.acc.materialize_overlay(base, mark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> TemporalGraph {
        TemporalGraph::from_sequence(
            5,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(1)), // duplicate announcement
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
            ],
        )
    }

    #[test]
    fn prefix_snapshots_grow() {
        let t = stream();
        assert_eq!(t.snapshot_of_prefix(0).num_edges(), 0);
        assert_eq!(t.snapshot_of_prefix(2).num_edges(), 2);
        assert_eq!(t.snapshot_of_prefix(3).num_edges(), 2); // duplicate collapsed
        assert_eq!(t.snapshot_of_prefix(5).num_edges(), 4);
        assert_eq!(t.snapshot_of_prefix(999).num_edges(), 4);
    }

    #[test]
    fn fraction_snapshots() {
        let t = stream();
        let (g1, g2) = t.snapshot_pair(0.4, 1.0);
        assert_eq!(g1.num_edges(), 2); // ceil(0.4 * 5) = 2 events
        assert_eq!(g2.num_edges(), 4);
        assert_eq!(t.snapshot_at_fraction(0.0).num_edges(), 0);
        assert_eq!(t.snapshot_at_fraction(2.0).num_edges(), 4); // clamped
    }

    #[test]
    fn time_snapshots() {
        let events = vec![
            TimedEdge {
                u: NodeId(0),
                v: NodeId(1),
                time: 10,
            },
            TimedEdge {
                u: NodeId(1),
                v: NodeId(2),
                time: 20,
            },
            TimedEdge {
                u: NodeId(2),
                v: NodeId(0),
                time: 30,
            },
        ];
        let t = TemporalGraph::new(3, events);
        assert_eq!(t.snapshot_at(9).num_edges(), 0);
        assert_eq!(t.snapshot_at(10).num_edges(), 1);
        assert_eq!(t.snapshot_at(25).num_edges(), 2);
        assert_eq!(t.snapshot_at(u64::MAX).num_edges(), 3);
    }

    #[test]
    fn events_sorted_on_construction() {
        let events = vec![
            TimedEdge {
                u: NodeId(1),
                v: NodeId(2),
                time: 5,
            },
            TimedEdge {
                u: NodeId(0),
                v: NodeId(1),
                time: 1,
            },
        ];
        let t = TemporalGraph::new(3, events);
        assert_eq!(t.events()[0].time, 1);
        assert_eq!(t.num_events(), 2);
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn new_edges_detected() {
        let t = stream();
        let (g1, g2) = t.snapshot_pair(0.4, 1.0);
        let new = TemporalGraph::new_edges_between(&g1, &g2);
        assert_eq!(new, vec![(NodeId(2), NodeId(3)), (NodeId(3), NodeId(4))]);
    }

    #[test]
    #[should_panic(expected = "outside node universe")]
    fn out_of_universe_event_panics() {
        TemporalGraph::from_sequence(2, vec![(NodeId(0), NodeId(5))]);
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn inverted_fraction_pair_panics() {
        stream().snapshot_pair(0.9, 0.5);
    }

    /// The accumulator must produce graphs bit-identical to `GraphBuilder`
    /// fed the same events — same CSR layout *and* edge-id assignment.
    #[test]
    fn accumulator_matches_builder() {
        let t = stream();
        for count in 0..=t.num_events() {
            let mut b = crate::builder::GraphBuilder::with_capacity(t.num_nodes(), count);
            let mut acc = GraphAccumulator::new(t.num_nodes());
            for e in &t.events()[..count] {
                b.add_edge(e.u, e.v);
                acc.insert_edge(e.u, e.v);
            }
            assert_eq!(acc.materialize(), b.build(), "prefix {count}");
        }
    }

    #[test]
    fn accumulator_rejects_self_loops_and_duplicates() {
        let mut acc = GraphAccumulator::new(3);
        assert!(!acc.insert_edge(NodeId(1), NodeId(1)));
        assert!(acc.insert_edge(NodeId(0), NodeId(1)));
        assert!(!acc.insert_edge(NodeId(1), NodeId(0))); // reversed duplicate
        assert!(acc.contains_edge(NodeId(1), NodeId(0)));
        assert_eq!(acc.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "outside node universe")]
    fn accumulator_out_of_universe_panics() {
        GraphAccumulator::new(2).insert_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn cursor_cuts_growing_snapshots() {
        let t = stream();
        let mut cursor = t.cursor();
        cursor.advance_to_prefix(2);
        assert_eq!(cursor.materialize(), t.snapshot_of_prefix(2));
        cursor.advance_to_prefix(3); // duplicate event: no growth
        assert_eq!(cursor.materialize().num_edges(), 2);
        cursor.advance_to_fraction(1.0);
        assert_eq!(cursor.consumed(), 5);
        assert_eq!(cursor.materialize(), t.snapshot_of_prefix(5));
    }

    #[test]
    #[should_panic(expected = "forward-only")]
    fn cursor_is_forward_only() {
        let t = stream();
        let mut cursor = t.cursor();
        cursor.advance_to_prefix(4);
        cursor.advance_to_prefix(2);
    }

    #[test]
    fn cursor_overlay_matches_materialized_snapshot() {
        use crate::csr::GraphView;
        let t = stream();
        let mut cursor = t.cursor();
        cursor.advance_to_prefix(2);
        let g1 = cursor.materialize();
        let mark = cursor.insertions();
        cursor.advance_to_prefix(5);
        let ov = cursor.materialize_overlay(&g1, mark);
        let g2 = cursor.materialize();
        assert_eq!(ov.num_edges(), g2.num_edges());
        for u in g2.nodes() {
            let mut nbrs = Vec::new();
            ov.for_each_neighbor(u, |v| nbrs.push(v));
            assert_eq!(nbrs.as_slice(), g2.neighbors(u), "node {u}");
        }
        // The O(Δ) overlay delta equals the O(E) containment scan.
        let slow = crate::repair::snapshot_delta(&g1, &g2);
        assert!(slow.growth_only);
        assert_eq!(ov.to_delta().inserted, slow.inserted);
    }

    #[test]
    fn accumulator_edges_since_checkpoint() {
        let mut acc = GraphAccumulator::new(4);
        acc.insert_edge(NodeId(0), NodeId(1));
        let mark = acc.insertions();
        assert_eq!(mark, 1);
        acc.insert_edge(NodeId(1), NodeId(0)); // duplicate: not logged
        acc.insert_edge(NodeId(2), NodeId(1)); // normalized to (1, 2)
        assert_eq!(acc.edges_since(mark), &[(NodeId(1), NodeId(2))]);
    }

    #[test]
    fn accumulator_seeded_from_graph() {
        let t = stream();
        let g = t.snapshot_of_prefix(5);
        let acc = GraphAccumulator::from_graph(&g);
        assert_eq!(acc.materialize(), g);
    }
}
