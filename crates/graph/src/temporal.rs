//! Timestamped edge streams and snapshot extraction.
//!
//! The paper models an evolving network as a sequence of slices of node and
//! edge insertions; `G_t` aggregates all slices up to `t`. A
//! [`TemporalGraph`] is exactly that: an ordered stream of timestamped edges
//! over a fixed node universe, from which prefix snapshots are cut either by
//! timestamp or by edge fraction ("the first snapshot contains 80 percent of
//! the edges", §5.1).

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// An edge insertion event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEdge {
    /// One endpoint.
    pub u: NodeId,
    /// Other endpoint.
    pub v: NodeId,
    /// Insertion time (any monotone counter; ties allowed).
    pub time: u64,
}

/// An evolving graph: a fixed node universe plus a time-ordered edge stream.
///
/// Duplicate edge announcements are allowed in the stream (snapshots take
/// the set union); self-loops are dropped at snapshot time.
///
/// ```
/// use cp_graph::{NodeId, TemporalGraph};
///
/// let t = TemporalGraph::from_sequence(
///     3,
///     vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2)), (NodeId(0), NodeId(2))],
/// );
/// let (g1, g2) = t.snapshot_pair(0.5, 1.0);
/// assert_eq!(g1.num_edges(), 2); // ceil(0.5 * 3) = first two insertions
/// assert_eq!(g2.num_edges(), 3); // the whole triangle
/// assert_eq!(
///     TemporalGraph::new_edges_between(&g1, &g2),
///     vec![(NodeId(0), NodeId(2))]
/// );
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalGraph {
    num_nodes: usize,
    events: Vec<TimedEdge>,
}

impl TemporalGraph {
    /// Creates a temporal graph from an event list; events are sorted by
    /// time (stable, so same-time events keep their given order).
    pub fn new(num_nodes: usize, mut events: Vec<TimedEdge>) -> Self {
        for e in &events {
            assert!(
                e.u.index() < num_nodes && e.v.index() < num_nodes,
                "event endpoint outside node universe"
            );
        }
        events.sort_by_key(|e| e.time);
        TemporalGraph { num_nodes, events }
    }

    /// Creates a temporal graph where event order *is* the timestamp.
    pub fn from_sequence(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let events = edges
            .into_iter()
            .enumerate()
            .map(|(i, (u, v))| TimedEdge {
                u,
                v,
                time: i as u64,
            })
            .collect();
        TemporalGraph::new(num_nodes, events)
    }

    /// Size of the node universe.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total number of edge events (including duplicates).
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// The time-ordered event stream.
    pub fn events(&self) -> &[TimedEdge] {
        &self.events
    }

    /// Snapshot containing every edge inserted at time `<= t`.
    pub fn snapshot_at(&self, t: u64) -> Graph {
        let end = self.events.partition_point(|e| e.time <= t);
        self.snapshot_of_prefix(end)
    }

    /// Snapshot containing the first `ceil(fraction * num_events)` events.
    ///
    /// `fraction` is clamped to `[0, 1]`. This is the paper's snapshot
    /// convention ("`G_t1` contains 80 percent of the edges, `G_t2` the
    /// entire graph").
    pub fn snapshot_at_fraction(&self, fraction: f64) -> Graph {
        let f = fraction.clamp(0.0, 1.0);
        let end = (f * self.events.len() as f64).ceil() as usize;
        self.snapshot_of_prefix(end.min(self.events.len()))
    }

    /// Snapshot of the first `count` events.
    pub fn snapshot_of_prefix(&self, count: usize) -> Graph {
        let count = count.min(self.events.len());
        let mut b = GraphBuilder::with_capacity(self.num_nodes, count);
        for e in &self.events[..count] {
            b.add_edge(e.u, e.v);
        }
        b.build()
    }

    /// The pair of snapshots `(G_t1, G_t2)` at the given edge fractions;
    /// convenience for the standard experimental setup.
    pub fn snapshot_pair(&self, f1: f64, f2: f64) -> (Graph, Graph) {
        assert!(f1 <= f2, "first snapshot must precede second");
        (self.snapshot_at_fraction(f1), self.snapshot_at_fraction(f2))
    }

    /// Edges present in the second snapshot but not the first, as
    /// normalized `(min, max)` pairs, de-duplicated. These are the *new*
    /// edges whose endpoints form the Incidence baseline's active set.
    pub fn new_edges_between(g1: &Graph, g2: &Graph) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for u in g2.nodes() {
            for &v in g2.neighbors(u) {
                if u < v && !g1.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> TemporalGraph {
        TemporalGraph::from_sequence(
            5,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(1)), // duplicate announcement
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
            ],
        )
    }

    #[test]
    fn prefix_snapshots_grow() {
        let t = stream();
        assert_eq!(t.snapshot_of_prefix(0).num_edges(), 0);
        assert_eq!(t.snapshot_of_prefix(2).num_edges(), 2);
        assert_eq!(t.snapshot_of_prefix(3).num_edges(), 2); // duplicate collapsed
        assert_eq!(t.snapshot_of_prefix(5).num_edges(), 4);
        assert_eq!(t.snapshot_of_prefix(999).num_edges(), 4);
    }

    #[test]
    fn fraction_snapshots() {
        let t = stream();
        let (g1, g2) = t.snapshot_pair(0.4, 1.0);
        assert_eq!(g1.num_edges(), 2); // ceil(0.4 * 5) = 2 events
        assert_eq!(g2.num_edges(), 4);
        assert_eq!(t.snapshot_at_fraction(0.0).num_edges(), 0);
        assert_eq!(t.snapshot_at_fraction(2.0).num_edges(), 4); // clamped
    }

    #[test]
    fn time_snapshots() {
        let events = vec![
            TimedEdge {
                u: NodeId(0),
                v: NodeId(1),
                time: 10,
            },
            TimedEdge {
                u: NodeId(1),
                v: NodeId(2),
                time: 20,
            },
            TimedEdge {
                u: NodeId(2),
                v: NodeId(0),
                time: 30,
            },
        ];
        let t = TemporalGraph::new(3, events);
        assert_eq!(t.snapshot_at(9).num_edges(), 0);
        assert_eq!(t.snapshot_at(10).num_edges(), 1);
        assert_eq!(t.snapshot_at(25).num_edges(), 2);
        assert_eq!(t.snapshot_at(u64::MAX).num_edges(), 3);
    }

    #[test]
    fn events_sorted_on_construction() {
        let events = vec![
            TimedEdge {
                u: NodeId(1),
                v: NodeId(2),
                time: 5,
            },
            TimedEdge {
                u: NodeId(0),
                v: NodeId(1),
                time: 1,
            },
        ];
        let t = TemporalGraph::new(3, events);
        assert_eq!(t.events()[0].time, 1);
        assert_eq!(t.num_events(), 2);
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn new_edges_detected() {
        let t = stream();
        let (g1, g2) = t.snapshot_pair(0.4, 1.0);
        let new = TemporalGraph::new_edges_between(&g1, &g2);
        assert_eq!(new, vec![(NodeId(2), NodeId(3)), (NodeId(3), NodeId(4))]);
    }

    #[test]
    #[should_panic(expected = "outside node universe")]
    fn out_of_universe_event_panics() {
        TemporalGraph::from_sequence(2, vec![(NodeId(0), NodeId(5))]);
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn inverted_fraction_pair_panics() {
        stream().snapshot_pair(0.9, 0.5);
    }
}
