//! Graph diameter: exact (threaded all-pairs BFS) and double-sweep bounds.
//!
//! Table 2 of the paper reports the diameter of each dataset snapshot. The
//! exact computation is affordable at the experiment scale (tens of
//! thousands of nodes); the double-sweep lower bound is provided for quick
//! sanity checks on bigger graphs.

use crate::apsp::for_each_source;
use crate::bfs::{farthest_node_into, BfsWorkspace};
use crate::graph::{Graph, NodeId};
use crate::INF;
use std::sync::atomic::{AtomicU32, Ordering};

/// Exact diameter of the graph: the largest finite pairwise distance
/// (i.e. the diameter of the largest-eccentricity component). Returns 0 for
/// edgeless graphs.
pub fn diameter_exact(graph: &Graph, threads: usize) -> u32 {
    let best = AtomicU32::new(0);
    for_each_source(graph, threads, |_, dist| {
        let mut local = 0;
        for &d in dist {
            if d != INF && d > local {
                local = d;
            }
        }
        best.fetch_max(local, Ordering::Relaxed);
    });
    best.load(Ordering::Relaxed)
}

/// Double-sweep lower bound on the diameter.
///
/// BFS from `start`, then BFS from the farthest node found; the second
/// eccentricity is a classic (usually tight on real-world graphs) lower
/// bound. `start` should be a node of the component of interest — pass a
/// max-degree node for the conventional heuristic.
pub fn diameter_double_sweep(graph: &Graph, start: NodeId) -> u32 {
    let mut dist = vec![0u32; graph.num_nodes()];
    let mut ws = BfsWorkspace::new();
    let (far, _) = farthest_node_into(graph, start, &mut dist, &mut ws);
    let (_, ecc) = farthest_node_into(graph, far, &mut dist, &mut ws);
    ecc
}

/// Double-sweep lower bound started from a maximum-degree node.
pub fn diameter_estimate(graph: &Graph) -> u32 {
    let start = graph
        .nodes()
        .max_by_key(|&u| graph.degree(u))
        .unwrap_or(NodeId(0));
    if graph.num_nodes() == 0 {
        return 0;
    }
    diameter_double_sweep(graph, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn path_diameter() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(diameter_exact(&g, 2), 5);
        assert_eq!(diameter_double_sweep(&g, NodeId(2)), 5);
        assert_eq!(diameter_estimate(&g), 5);
    }

    #[test]
    fn cycle_diameter() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(diameter_exact(&g, 2), 3);
        // Double sweep is a lower bound; on even cycles it is exact.
        assert!(diameter_double_sweep(&g, NodeId(0)) <= 3);
    }

    #[test]
    fn disconnected_uses_largest_finite_distance() {
        let g = graph_from_edges(7, &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 6)]);
        assert_eq!(diameter_exact(&g, 2), 3);
    }

    #[test]
    fn edgeless_graph() {
        let g = graph_from_edges(3, &[]);
        assert_eq!(diameter_exact(&g, 2), 0);
        assert_eq!(diameter_estimate(&g), 0);
    }

    #[test]
    fn double_sweep_never_exceeds_exact() {
        let g = graph_from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
            ],
        );
        let exact = diameter_exact(&g, 2);
        for s in 0..9 {
            assert!(diameter_double_sweep(&g, NodeId(s)) <= exact);
        }
    }
}
