//! LEB128-style variable-length integers for compressed adjacency.
//!
//! The compressed CSR store ([`crate::csr::CompressedCsr`]) encodes each
//! adjacency list as a first absolute target followed by strictly positive
//! gaps; both are written with this varint. Seven payload bits per byte,
//! little-endian groups, high bit set on every byte except the last:
//! values below 128 — the overwhelming majority of gaps in a sorted
//! adjacency list of a social-like graph — cost a single byte, which is
//! where the ≥ 4× shrink over the 4-byte `u32` target array comes from.

/// Maximum encoded length of a `u32` (⌈32 / 7⌉ bytes).
pub const MAX_VARINT_BYTES: usize = 5;

/// Appends the varint encoding of `x` to `out`.
#[inline]
pub fn encode_u32(mut x: u32, out: &mut Vec<u8>) {
    while x >= 0x80 {
        out.push((x as u8 & 0x7f) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Decodes one varint at `*pos`, advancing `*pos` past it.
///
/// The encoder only ever produces canonical (minimal-length) encodings, so
/// a well-formed buffer never needs more than [`MAX_VARINT_BYTES`] bytes.
///
/// # Panics
/// Panics (via slice indexing) if the buffer ends mid-value — encoded
/// adjacency data is produced and consumed inside this crate, so a
/// truncated buffer is a logic error, not an input error.
#[inline]
pub fn decode_u32(data: &[u8], pos: &mut usize) -> u32 {
    let mut x = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = data[*pos];
        *pos += 1;
        x |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// The encoded length of `x` in bytes, without encoding it.
#[inline]
pub fn encoded_len(x: u32) -> usize {
    match x {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_boundary_values() {
        let values = [
            0u32,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            0xfff_ffff,
            0x1000_0000,
            u32::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            buf.clear();
            encode_u32(v, &mut buf);
            assert_eq!(buf.len(), encoded_len(v), "len of {v:#x}");
            assert!(buf.len() <= MAX_VARINT_BYTES);
            let mut pos = 0;
            assert_eq!(decode_u32(&buf, &mut pos), v, "value {v:#x}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn decodes_a_packed_sequence() {
        let values: Vec<u32> = (0..1000).map(|i| i * 31 + (i % 7) * 1_000_000).collect();
        let mut buf = Vec::new();
        for &v in &values {
            encode_u32(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(decode_u32(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }
}
