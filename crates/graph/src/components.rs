//! Connected components and connected-pair counting.
//!
//! The paper restricts Problem 1 to pairs *connected in `G_t1`* (otherwise
//! the distance decrease is infinite and the problem degenerates to "which
//! components merged"). Table 2 also reports the number of non-connected
//! pairs per dataset; both computations live here.

use crate::graph::{Graph, NodeId};
use crate::unionfind::UnionFind;

/// The component decomposition of a graph.
#[derive(Clone, Debug)]
pub struct Components {
    /// `labels[u]` is the component index of node `u`, in `0..num_components`.
    pub labels: Vec<u32>,
    /// `sizes[c]` is the number of nodes in component `c` (isolated nodes
    /// form singleton components).
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of components (including singletons).
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Whether `u` and `v` are in the same component.
    #[inline]
    pub fn connected(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }

    /// Component label of `u`.
    #[inline]
    pub fn label(&self, u: NodeId) -> u32 {
        self.labels[u.index()]
    }

    /// Number of unordered node pairs that are connected
    /// (`Σ_c size_c · (size_c − 1) / 2`).
    pub fn connected_pairs(&self) -> u64 {
        self.sizes
            .iter()
            .map(|&s| (s as u64) * (s as u64 - 1) / 2)
            .sum()
    }

    /// Number of unordered pairs of *active* (degree > 0) nodes that are not
    /// connected; this is what the paper's Table 2 reports as
    /// "not-connected".
    pub fn not_connected_active_pairs(&self, graph: &Graph) -> u64 {
        let active: Vec<bool> = graph.nodes().map(|u| graph.degree(u) > 0).collect();
        let total_active = active.iter().filter(|&&a| a).count() as u64;
        let all_pairs = total_active * total_active.saturating_sub(1) / 2;
        // Active nodes per component; a component of active nodes contributes
        // its internal pairs to the "connected" side.
        let mut active_per_comp = vec![0u64; self.sizes.len()];
        for u in graph.nodes() {
            if active[u.index()] {
                active_per_comp[self.labels[u.index()] as usize] += 1;
            }
        }
        let connected: u64 = active_per_comp
            .iter()
            .map(|&s| s * s.saturating_sub(1) / 2)
            .sum();
        all_pairs - connected
    }

    /// Nodes of the largest component.
    pub fn largest_component_nodes(&self) -> Vec<NodeId> {
        let best = self
            .sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| *s)
            .map(|(c, _)| c as u32);
        match best {
            None => Vec::new(),
            Some(c) => (0..self.labels.len())
                .filter(|&i| self.labels[i] == c)
                .map(NodeId::new)
                .collect(),
        }
    }
}

/// Computes the connected components of `graph` via union-find.
pub fn components(graph: &Graph) -> Components {
    let n = graph.num_nodes();
    let mut uf = UnionFind::new(n);
    for u in graph.nodes() {
        for &v in graph.neighbors(u) {
            if u < v {
                uf.union(u.index(), v.index());
            }
        }
    }
    // Relabel roots densely.
    let mut root_to_label = vec![u32::MAX; n];
    let mut labels = vec![0u32; n];
    let mut sizes = Vec::new();
    for (i, label) in labels.iter_mut().enumerate() {
        let r = uf.find(i);
        if root_to_label[r] == u32::MAX {
            root_to_label[r] = sizes.len() as u32;
            sizes.push(0);
        }
        *label = root_to_label[r];
        sizes[root_to_label[r] as usize] += 1;
    }
    Components { labels, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn two_components_and_isolated() {
        // {0,1,2} path, {3,4} edge, 5 isolated.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = components(&g);
        assert_eq!(c.num_components(), 3);
        assert!(c.connected(NodeId(0), NodeId(2)));
        assert!(!c.connected(NodeId(0), NodeId(3)));
        assert_eq!(c.connected_pairs(), 3 + 1); // C(3,2) + C(2,2)
                                                // Active nodes: 0..=4 (5 nodes, 10 pairs), connected pairs among
                                                // active: 3 + 1 = 4, so 6 not connected.
        assert_eq!(c.not_connected_active_pairs(&g), 6);
    }

    #[test]
    fn largest_component() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = components(&g);
        assert_eq!(
            c.largest_component_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn fully_connected() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = components(&g);
        assert_eq!(c.num_components(), 1);
        assert_eq!(c.connected_pairs(), 6);
        assert_eq!(c.not_connected_active_pairs(&g), 0);
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(0, &[]);
        let c = components(&g);
        assert_eq!(c.num_components(), 0);
        assert_eq!(c.connected_pairs(), 0);
        assert!(c.largest_component_nodes().is_empty());
    }
}
