//! Graph substrate for the converging-pairs library.
//!
//! This crate provides everything the EDBT 2015 *converging pairs* algorithms
//! need from a graph library, built from scratch:
//!
//! * [`Graph`] — an immutable, undirected snapshot in CSR form with sorted
//!   adjacency lists and optional integer edge weights.
//! * [`GraphBuilder`] — incremental construction with de-duplication of
//!   parallel edges and removal of self-loops.
//! * [`TemporalGraph`] — a timestamped edge stream over a fixed node universe
//!   from which prefix snapshots (e.g. "the graph after 80 % of the edges")
//!   can be extracted; this models the paper's slice sequence
//!   `S_1, S_2, …, S_t` of node and edge insertions.
//! * Single-source shortest paths: [`bfs`](bfs::bfs) for unit weights
//!   (direction-optimizing top-down/bottom-up hybrid) and
//!   [`dijkstra`](dijkstra::dijkstra) for weighted graphs, plus reusable
//!   workspaces so hot loops do not allocate.
//! * [`msbfs`] — bit-parallel multi-source BFS advancing up to 64 sources
//!   per graph sweep, the kernel behind the budget oracle's batched
//!   prefetch.
//! * [`repair`] — snapshot-delta SSSP repair: for growth-only snapshot
//!   pairs (`G_t1 ⊆ G_t2`) the `t2` row of a source is derived from its
//!   `t1` row by relaxing only the shrinking region seeded from the
//!   inserted edges, instead of sweeping the whole graph.
//! * [`components`] — connected components, connected-pair counting.
//! * [`diameter`] — exact (threaded all-pairs BFS) and double-sweep bounds.
//! * [`betweenness`] — Brandes node and edge betweenness, exact and
//!   pivot-sampled (needed by the Incidence baseline of Papadimitriou et
//!   al. that the paper compares against).
//! * [`apsp`] — threaded all-pairs BFS streaming, used to compute the exact
//!   ground-truth top-k converging pairs.
//! * [`landmark_index`] — classic landmark distance estimation (triangle
//!   upper/lower bounds), the technique the paper's related work builds on
//!   and the basis of the Δ-certification extension in `cp-core`.
//! * [`rowpack`] — compact row storage: `u16` packing for unweighted
//!   distance rows (half the bytes, twice the cache reach) and a pooled
//!   slab [`RowArena`](rowpack::RowArena) with a free list, the backing
//!   store of the budget oracle's resident-row cache.
//! * [`csr`] / [`overlay`] / [`varint`] — snapshot storage layouts behind
//!   the [`GraphView`](csr::GraphView) trait: the full CSR, an O(Δ)
//!   insertion overlay sharing the previous snapshot's structure
//!   ([`OverlayGraph`]), and a delta-gap varint compressed adjacency
//!   ([`CompressedCsr`](csr::CompressedCsr)); all traversal kernels are
//!   generic over the view so the three stores are interchangeable and
//!   bit-identical.
//!
//! Distances are `u32` with [`INF`] as the unreachable sentinel, which keeps
//! distance rows compact (4 bytes/node) — the experiments stream millions of
//! distance rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp;
pub mod betweenness;
pub mod bfs;
pub mod builder;
pub mod components;
pub mod csr;
pub mod degrees;
pub mod diameter;
pub mod dijkstra;
pub mod graph;
pub mod landmark_index;
pub mod msbfs;
pub mod overlay;
pub mod repair;
pub mod rowpack;
pub mod temporal;
pub mod unionfind;
pub mod varint;

pub use builder::GraphBuilder;
pub use csr::{CompressedCsr, GraphView, GraphViewRef};
pub use graph::{Graph, NodeId};
pub use overlay::OverlayGraph;
pub use temporal::{GraphAccumulator, PrefixCursor, TemporalGraph, TimedEdge};

/// Sentinel distance meaning "unreachable".
///
/// All shortest-path routines in this crate write this value for nodes that
/// are not connected to the source. Real distances are always strictly
/// smaller (a graph with `u32::MAX` nodes does not fit in memory).
pub const INF: u32 = u32::MAX;

/// Returns `true` for a reachable (finite) distance.
#[inline]
pub fn reachable(d: u32) -> bool {
    d != INF
}

/// The decrease in distance between two snapshots, `d1 - d2`, following the
/// paper's Δ_{t1,t2}(u, v) = d_{t1}(u, v) − d_{t2}(u, v).
///
/// Pairs that are unreachable in the *first* snapshot are excluded by the
/// problem definition (the paper only considers pairs connected in `G_t1`),
/// so this returns `None` when `d1 == INF`. Edge insertions can only shrink
/// distances, hence `d2 <= d1` whenever both are finite; the function is
/// nevertheless total and saturates at zero if fed a non-monotone input.
#[inline]
pub fn distance_decrease(d1: u32, d2: u32) -> Option<u32> {
    if d1 == INF {
        None
    } else if d2 == INF {
        // Cannot happen for growing graphs; treat as "no decrease" so that
        // corrupted inputs never produce a bogus huge delta.
        Some(0)
    } else {
        Some(d1.saturating_sub(d2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_decrease_basic() {
        assert_eq!(distance_decrease(5, 2), Some(3));
        assert_eq!(distance_decrease(5, 5), Some(0));
        assert_eq!(distance_decrease(INF, 2), None);
        assert_eq!(distance_decrease(5, INF), Some(0));
    }

    #[test]
    fn distance_decrease_saturates() {
        // Non-monotone input (would indicate edge deletion) saturates to 0.
        assert_eq!(distance_decrease(2, 5), Some(0));
    }

    #[test]
    fn reachable_sentinel() {
        assert!(reachable(0));
        assert!(reachable(123));
        assert!(!reachable(INF));
    }
}
