//! The immutable CSR snapshot type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node identifier.
///
/// Nodes are dense indices `0..n` into a fixed universe shared by all
/// snapshots of the same evolving graph, so a `NodeId` obtained from the
/// first snapshot is valid in the second one. Stored as `u32`: the paper's
/// datasets (and our synthetic equivalents) have tens of thousands of nodes,
/// and compact ids keep distance rows and adjacency arrays small.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's dense index, for indexing into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An immutable undirected graph snapshot in compressed-sparse-row form.
///
/// * Adjacency lists are sorted by target id, enabling `O(log deg)` edge
///   lookup ([`Graph::has_edge`], [`Graph::edge_id`]).
/// * Every undirected edge `{u, v}` is stored as two arcs; both arcs carry
///   the same *edge id* in `0..num_edges()`, which [`betweenness`] uses to
///   accumulate per-edge scores.
/// * Optional positive integer edge weights (indexed by edge id). The
///   converging-pairs experiments are unweighted (unit weights), matching
///   the paper's evaluation, but the SSSP layer dispatches to Dijkstra when
///   weights are present.
///
/// [`betweenness`]: crate::betweenness
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    pub(crate) offsets: Vec<usize>,
    pub(crate) targets: Vec<NodeId>,
    /// Undirected edge id per arc, parallel to `targets`.
    pub(crate) arc_edge: Vec<u32>,
    /// `weights[e]` is the weight of edge id `e`; `None` means unit weights.
    pub(crate) weights: Option<Vec<u32>>,
    pub(crate) num_edges: usize,
}

impl Graph {
    /// Number of nodes in the universe (including isolated nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    /// Sorted neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// Number of arcs (`2 * num_edges()`): the degree sum the direction-
    /// optimizing BFS heuristic budgets against.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// The CSR degree-prefix array: `arc_offsets()[u.index()]..
    /// arc_offsets()[u.index() + 1]` indexes `u`'s arcs in
    /// [`Self::arc_targets`]. Raw access for flat traversal kernels
    /// (`bfs`, `msbfs`) that iterate all adjacency slices without
    /// per-node slicing overhead.
    #[inline]
    pub fn arc_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat CSR target array, parallel to [`Self::arc_offsets`].
    #[inline]
    pub fn arc_targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Neighbors of `u` zipped with the undirected edge id of each arc.
    #[inline]
    pub fn neighbors_with_edge_ids(&self, u: NodeId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        let range = self.offsets[u.index()]..self.offsets[u.index() + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.arc_edge[range].iter().copied())
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The undirected edge id of `{u, v}`, if the edge exists.
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let base = self.offsets[u.index()];
        self.neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|pos| self.arc_edge[base + pos])
    }

    /// Weight of edge id `e` (1 for unweighted graphs).
    #[inline]
    pub fn edge_weight(&self, e: u32) -> u32 {
        match &self.weights {
            Some(w) => w[e as usize],
            None => 1,
        }
    }

    /// Whether the graph carries explicit edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Iterator over all node ids, including isolated ones.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Lazy iterator over all undirected edges as `(u, v)` with `u < v`,
    /// in **node order** (ascending `u`, then ascending `v`), `O(1)` space.
    ///
    /// Each undirected edge is emitted exactly once, from the arc whose
    /// source is the smaller endpoint. Callers that need **edge-id order**
    /// (e.g. to index per-edge score arrays) must use
    /// [`Self::edge_endpoints_vec`], which materializes the `O(m)`
    /// endpoint table instead.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Endpoint table indexed by edge id: `table[e] = (u, v)` with `u < v`.
    pub fn edge_endpoints_vec(&self) -> Vec<(NodeId, NodeId)> {
        let mut table = vec![(NodeId(0), NodeId(0)); self.num_edges];
        for u in self.nodes() {
            for (v, e) in self.neighbors_with_edge_ids(u) {
                if u < v {
                    table[e as usize] = (u, v);
                }
            }
        }
        table
    }

    /// Number of nodes with at least one incident edge.
    ///
    /// The paper reports active node counts for its datasets (Table 2); our
    /// snapshots share a fixed node universe so isolated nodes exist in the
    /// early snapshots.
    pub fn num_active_nodes(&self) -> usize {
        self.nodes().filter(|&u| self.degree(u) > 0).count()
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Density `2m / (n(n-1))` over *active* nodes.
    pub fn density(&self) -> f64 {
        let n = self.num_active_nodes() as f64;
        if n < 2.0 {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / (n * (n - 1.0))
    }

    /// Heap bytes owned by the CSR arrays (`offsets`, `targets`,
    /// `arc_edge`, `weights`). Baseline for the per-store memory stats
    /// reported by the pipeline.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
            + self.arc_edge.len() * std::mem::size_of::<u32>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<u32>())
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// Checks: offsets are monotone, adjacency sorted and symmetric, arc
    /// count is `2 * num_edges`, edge ids are consistent on both arcs and
    /// cover `0..num_edges`, no self-loops or duplicates.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.targets.len() {
            return Err("offsets do not span targets".into());
        }
        if self.targets.len() != 2 * self.num_edges {
            return Err(format!(
                "arc count {} != 2 * edge count {}",
                self.targets.len(),
                self.num_edges
            ));
        }
        if self.arc_edge.len() != self.targets.len() {
            return Err("arc_edge length mismatch".into());
        }
        if let Some(w) = &self.weights {
            if w.len() != self.num_edges {
                return Err("weights length mismatch".into());
            }
        }
        let mut seen_edge = vec![0u8; self.num_edges];
        for u in self.nodes() {
            let nbrs = self.neighbors(u);
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {u:?} not strictly sorted"));
            }
            for (v, e) in self.neighbors_with_edge_ids(u) {
                if v.index() >= n {
                    return Err(format!("target {v:?} out of range"));
                }
                if v == u {
                    return Err(format!("self-loop at {u:?}"));
                }
                match self.edge_id(v, u) {
                    Some(back) if back == e => {}
                    _ => return Err(format!("asymmetric arc {u:?} -> {v:?}")),
                }
                if u < v {
                    seen_edge[e as usize] += 1;
                }
            }
        }
        if seen_edge.iter().any(|&c| c != 1) {
            return Err("edge ids do not cover 0..num_edges exactly once".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path4() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = path4();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
        g.check_invariants().unwrap();
    }

    #[test]
    fn edge_ids_symmetric() {
        let g = path4();
        for (u, v) in g.edge_endpoints_vec() {
            assert_eq!(g.edge_id(u, v), g.edge_id(v, u));
        }
    }

    #[test]
    fn edges_iterator_matches_count() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn density_and_active_nodes() {
        let mut b = GraphBuilder::new(5); // node 4 isolated
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        assert_eq!(g.num_active_nodes(), 4);
        assert!((g.density() - 2.0 * 3.0 / 12.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId(7)), "7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(NodeId::new(3), NodeId(3));
        assert_eq!(NodeId::from(9u32).index(), 9);
    }
}
