//! Dijkstra single-source shortest paths for weighted graphs.
//!
//! The paper considers "undirected (weighted) graphs" in its problem
//! definition even though the evaluation is unweighted; the SSSP layer of
//! `cp-core` dispatches here whenever a snapshot carries edge weights, so
//! the full pipeline works on weighted inputs too.

use crate::bfs::TraversalWork;
use crate::csr::GraphView;
use crate::graph::NodeId;
use crate::INF;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes weighted shortest-path distances from `src`.
///
/// Distances are `u32` like the BFS path; the caller is responsible for
/// keeping total path weights below [`INF`] (the routine saturates instead
/// of overflowing, so a saturated path is simply treated as unreachable-ish
/// long but never wraps).
pub fn dijkstra<V: GraphView>(graph: &V, src: NodeId) -> Vec<u32> {
    let mut dist = vec![INF; graph.num_nodes()];
    dijkstra_into(graph, src, &mut dist);
    dist
}

/// In-place variant of [`dijkstra`]; `dist` is resized and overwritten.
pub fn dijkstra_into<V: GraphView>(graph: &V, src: NodeId, dist: &mut Vec<u32>) {
    dijkstra_limited_into(graph, src, dist, INF, &mut TraversalWork::new());
}

/// Distance-limited, work-counted variant of [`dijkstra_into`].
///
/// Settling stops once the heap's minimum exceeds `limit`: by the Dijkstra
/// invariant every node within distance `limit` has its exact value at
/// that point, and any remaining tentative entry (`> limit`) is swept back
/// to [`INF`] so a truncated row never exposes a non-final distance. With
/// `limit == INF` the output is identical to [`dijkstra_into`]. Returns
/// `true` iff the cutoff actually fired.
pub fn dijkstra_limited_into<V: GraphView>(
    graph: &V,
    src: NodeId,
    dist: &mut Vec<u32>,
    limit: u32,
    work: &mut TraversalWork,
) -> bool {
    dist.clear();
    dist.resize(graph.num_nodes(), INF);
    let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src)));
    let mut truncated = false;
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue; // stale entry
        }
        if d > limit {
            truncated = true;
            break;
        }
        work.settled += 1;
        graph.for_each_neighbor_weighted(u, |v, w| {
            work.relaxed += 1;
            let nd = d.saturating_add(w).min(INF - 1);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Reverse((nd, v)));
            }
        });
    }
    if truncated {
        // Canonicalize: tentative distances beyond the limit were never
        // settled; a truncated row reports them as unreachable.
        for d in dist.iter_mut() {
            if *d > limit {
                *d = INF;
            }
        }
    }
    truncated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::builder::{graph_from_edges, GraphBuilder};

    #[test]
    fn weighted_path() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(NodeId(0), NodeId(1), 5);
        b.add_weighted_edge(NodeId(1), NodeId(2), 1);
        b.add_weighted_edge(NodeId(0), NodeId(2), 10);
        b.add_weighted_edge(NodeId(2), NodeId(3), 2);
        let g = b.build();
        let d = dijkstra(&g, NodeId(0));
        assert_eq!(d, vec![0, 5, 6, 8]);
    }

    #[test]
    fn unreachable_is_inf() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(NodeId(0), NodeId(1), 3);
        let g = b.build();
        let d = dijkstra(&g, NodeId(0));
        assert_eq!(d[2], INF);
    }

    #[test]
    fn matches_bfs_on_unit_weights() {
        // A small fixed graph where all weights are 1: Dijkstra == BFS.
        let g = graph_from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (1, 5),
                (5, 6),
            ],
        );
        for s in 0..7 {
            assert_eq!(dijkstra(&g, NodeId(s)), bfs(&g, NodeId(s)), "src {s}");
        }
    }

    #[test]
    fn limited_with_inf_matches_unlimited() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(NodeId(0), NodeId(1), 5);
        b.add_weighted_edge(NodeId(1), NodeId(2), 1);
        b.add_weighted_edge(NodeId(0), NodeId(2), 10);
        b.add_weighted_edge(NodeId(2), NodeId(3), 2);
        let g = b.build();
        let mut dist = Vec::new();
        let mut work = TraversalWork::new();
        let cut = dijkstra_limited_into(&g, NodeId(0), &mut dist, INF, &mut work);
        assert!(!cut);
        assert_eq!(dist, dijkstra(&g, NodeId(0)));
        assert_eq!(work.settled, 4);
    }

    #[test]
    fn limited_truncates_and_sweeps_tentative_entries() {
        // 0 -5- 1 -1- 2 -2- 3, chord 0 -10- 2. At limit 6 node 3 (dist 8)
        // is unsettled; its tentative entry 8 (and the stale 10 via the
        // chord) must both read INF in the truncated row.
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(NodeId(0), NodeId(1), 5);
        b.add_weighted_edge(NodeId(1), NodeId(2), 1);
        b.add_weighted_edge(NodeId(0), NodeId(2), 10);
        b.add_weighted_edge(NodeId(2), NodeId(3), 2);
        let g = b.build();
        let mut dist = Vec::new();
        let mut work = TraversalWork::new();
        let cut = dijkstra_limited_into(&g, NodeId(0), &mut dist, 6, &mut work);
        assert!(cut);
        assert_eq!(dist, vec![0, 5, 6, INF]);
        // Everything at or below the limit is exact, not merely bounded.
        let full = dijkstra(&g, NodeId(0));
        for (v, &d) in dist.iter().enumerate() {
            if d != INF {
                assert_eq!(d, full[v], "node {v}");
            }
        }
    }

    #[test]
    fn stale_heap_entries_skipped() {
        // Triangle with a long direct edge forces a decrease-key situation.
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(NodeId(0), NodeId(2), 100);
        b.add_weighted_edge(NodeId(0), NodeId(1), 1);
        b.add_weighted_edge(NodeId(1), NodeId(2), 1);
        let g = b.build();
        assert_eq!(dijkstra(&g, NodeId(0)), vec![0, 1, 2]);
    }
}
