//! Brandes betweenness centrality (node and edge), exact and pivot-sampled.
//!
//! The Incidence baseline of Papadimitriou et al. ranks active nodes by the
//! *importance* of their new edges — an estimate of edge betweenness. The
//! paper grants that baseline the *actual* edge betweenness ("giving an
//! advantage to the Incidence algorithm"), so we implement exact Brandes;
//! the pivot-sampled variant is provided for larger graphs and for the
//! baseline's original shortest-path-tree-sampling spirit.
//!
//! Unweighted graphs only (BFS-based Brandes), which matches every use in
//! the paper's evaluation.

use crate::graph::{Graph, NodeId};

/// Node and edge betweenness scores of one graph.
///
/// Scores are *unnormalized* sums over unordered source/target pairs, i.e.
/// each pair `{s, t}` contributes its dependency once (the directed Brandes
/// accumulation is halved). Sampled scores are scaled by `n / |pivots|` so
/// they estimate the exact ones.
#[derive(Clone, Debug)]
pub struct Betweenness {
    /// Per-node betweenness, indexed by node id.
    pub node: Vec<f64>,
    /// Per-edge betweenness, indexed by undirected edge id.
    pub edge: Vec<f64>,
}

struct BrandesWorkspace {
    dist: Vec<i32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    order: Vec<NodeId>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

impl BrandesWorkspace {
    fn new(n: usize) -> Self {
        BrandesWorkspace {
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            order: Vec::with_capacity(n),
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// One Brandes accumulation from source `s` into `acc_node`/`acc_edge`.
    fn accumulate(&mut self, graph: &Graph, s: NodeId, acc_node: &mut [f64], acc_edge: &mut [f64]) {
        let ws = self;
        // Reset only the touched entries from the previous run.
        for &u in &ws.order {
            ws.dist[u.index()] = -1;
            ws.sigma[u.index()] = 0.0;
            ws.delta[u.index()] = 0.0;
        }
        ws.dist[s.index()] = -1; // in case s was untouched before
        ws.sigma[s.index()] = 0.0;
        ws.delta[s.index()] = 0.0;
        ws.order.clear();
        ws.frontier.clear();
        ws.next.clear();

        ws.dist[s.index()] = 0;
        ws.sigma[s.index()] = 1.0;
        ws.frontier.push(s);
        let mut level = 0i32;
        while !ws.frontier.is_empty() {
            level += 1;
            for &u in &ws.frontier {
                ws.order.push(u);
            }
            for i in (ws.order.len() - ws.frontier.len())..ws.order.len() {
                let u = ws.order[i];
                let su = ws.sigma[u.index()];
                for &v in graph.neighbors(u) {
                    if ws.dist[v.index()] < 0 {
                        ws.dist[v.index()] = level;
                        ws.next.push(v);
                    }
                    if ws.dist[v.index()] == level {
                        ws.sigma[v.index()] += su;
                    }
                }
            }
            std::mem::swap(&mut ws.frontier, &mut ws.next);
            ws.next.clear();
        }
        // Dependency accumulation in reverse BFS order.
        for &w in ws.order.iter().rev() {
            let dw = ws.dist[w.index()];
            let coeff = (1.0 + ws.delta[w.index()]) / ws.sigma[w.index()];
            for (v, e) in graph.neighbors_with_edge_ids(w) {
                // v is a predecessor of w iff dist[v] == dist[w] - 1.
                if ws.dist[v.index()] == dw - 1 {
                    let c = ws.sigma[v.index()] * coeff;
                    ws.delta[v.index()] += c;
                    acc_edge[e as usize] += c;
                }
            }
            if w != s {
                acc_node[w.index()] += ws.delta[w.index()];
            }
        }
    }
}

/// Per-worker persistent Brandes scratch: the traversal workspace and
/// the private accumulation vectors live across batches in the
/// executor's [`cp_exec::WorkerScratch`]. The accumulators are drained
/// (merged and zeroed) at the end of every batch, so entries left from
/// an earlier graph only ever need resizing, never clearing.
struct BrandesScratch {
    ws: BrandesWorkspace,
    acc_node: Vec<f64>,
    acc_edge: Vec<f64>,
}

impl BrandesScratch {
    fn sized(&mut self, n: usize, m: usize) -> &mut Self {
        if self.ws.dist.len() != n {
            self.ws = BrandesWorkspace::new(n);
        }
        self.acc_node.clear();
        self.acc_node.resize(n, 0.0);
        self.acc_edge.clear();
        self.acc_edge.resize(m, 0.0);
        self
    }
}

fn run_brandes(graph: &Graph, pivots: &[NodeId], threads: usize, scale: f64) -> Betweenness {
    assert!(
        !graph.is_weighted(),
        "betweenness supports unweighted graphs only"
    );
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let threads = threads.max(1).min(pivots.len().max(1));
    let mut node = vec![0.0; n];
    let mut edge = vec![0.0; m];
    if threads == 1 {
        let mut ws = BrandesWorkspace::new(n);
        for &p in pivots {
            ws.accumulate(graph, p, &mut node, &mut edge);
        }
    } else {
        let mut slots = vec![(); pivots.len()];
        cp_exec::global().run_collect(
            &mut slots,
            threads,
            |i, _slot, ctx| {
                let scratch = ctx.scratch.get_or(|| BrandesScratch {
                    ws: BrandesWorkspace::new(n),
                    acc_node: vec![0.0; n],
                    acc_edge: vec![0.0; m],
                });
                if scratch.ws.dist.len() != n
                    || scratch.acc_node.len() != n
                    || scratch.acc_edge.len() != m
                {
                    scratch.sized(n, m);
                }
                let BrandesScratch {
                    ws,
                    acc_node,
                    acc_edge,
                } = scratch;
                ws.accumulate(graph, pivots[i], acc_node, acc_edge);
            },
            |_w, scratch| {
                // Merge per-worker accumulators in worker order, then
                // zero them so the next batch starts clean.
                if let Some(s) = scratch.get_if::<BrandesScratch>() {
                    if s.acc_node.len() == n && s.acc_edge.len() == m {
                        for (dst, src) in node.iter_mut().zip(&s.acc_node) {
                            *dst += src;
                        }
                        for (dst, src) in edge.iter_mut().zip(&s.acc_edge) {
                            *dst += src;
                        }
                        s.acc_node.iter_mut().for_each(|v| *v = 0.0);
                        s.acc_edge.iter_mut().for_each(|v| *v = 0.0);
                    }
                }
            },
        );
    }
    // Undirected: each unordered pair was counted from both endpoints when
    // iterating all sources; for pivot samples the halving still yields an
    // unbiased estimator of the unordered-pair score.
    let factor = 0.5 * scale;
    for v in node.iter_mut() {
        *v *= factor;
    }
    for v in edge.iter_mut() {
        *v *= factor;
    }
    Betweenness { node, edge }
}

/// Exact Brandes betweenness over all sources.
pub fn betweenness_exact(graph: &Graph, threads: usize) -> Betweenness {
    let pivots: Vec<NodeId> = graph.nodes().collect();
    run_brandes(graph, &pivots, threads, 1.0)
}

/// Pivot-sampled Brandes betweenness: accumulates from the given pivots and
/// scales by `n / |pivots|` to estimate the exact scores.
pub fn betweenness_sampled(graph: &Graph, pivots: &[NodeId], threads: usize) -> Betweenness {
    if pivots.is_empty() {
        return Betweenness {
            node: vec![0.0; graph.num_nodes()],
            edge: vec![0.0; graph.num_edges()],
        };
    }
    let scale = graph.num_nodes() as f64 / pivots.len() as f64;
    run_brandes(graph, pivots, threads, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn path_graph_node_betweenness() {
        // Path 0-1-2-3: node 1 lies on pairs {0,2},{0,3}; node 2 on {0,3},{1,3}.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = betweenness_exact(&g, 2);
        assert_close(b.node[0], 0.0);
        assert_close(b.node[1], 2.0);
        assert_close(b.node[2], 2.0);
        assert_close(b.node[3], 0.0);
    }

    #[test]
    fn path_graph_edge_betweenness() {
        // Edge {0,1} carries pairs {0,1},{0,2},{0,3} = 3; middle edge {1,2}
        // carries {0,2},{0,3},{1,2},{1,3} = 4.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = betweenness_exact(&g, 1);
        let e01 = g.edge_id(NodeId(0), NodeId(1)).unwrap() as usize;
        let e12 = g.edge_id(NodeId(1), NodeId(2)).unwrap() as usize;
        let e23 = g.edge_id(NodeId(2), NodeId(3)).unwrap() as usize;
        assert_close(b.edge[e01], 3.0);
        assert_close(b.edge[e12], 4.0);
        assert_close(b.edge[e23], 3.0);
    }

    #[test]
    fn star_center_has_all_betweenness() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let b = betweenness_exact(&g, 2);
        // Center lies on all C(4,2) = 6 leaf pairs.
        assert_close(b.node[0], 6.0);
        for leaf in 1..5 {
            assert_close(b.node[leaf], 0.0);
        }
        // Each spoke edge carries its leaf's 4 pairs (1 to center + 3 leaves).
        for e in 0..4 {
            assert_close(b.edge[e], 4.0);
        }
    }

    #[test]
    fn even_split_on_square() {
        // 4-cycle: two shortest paths between opposite corners, each through
        // a distinct intermediate -> each intermediate gets 1/2 per pair.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = betweenness_exact(&g, 2);
        for v in 0..4 {
            assert_close(b.node[v], 0.5);
        }
    }

    #[test]
    fn full_sample_equals_exact() {
        let g = graph_from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 5), (5, 6)]);
        let exact = betweenness_exact(&g, 2);
        let pivots: Vec<NodeId> = g.nodes().collect();
        let sampled = betweenness_sampled(&g, &pivots, 2);
        for i in 0..g.num_nodes() {
            assert_close(exact.node[i], sampled.node[i]);
        }
        for e in 0..g.num_edges() {
            assert_close(exact.edge[e], sampled.edge[e]);
        }
    }

    #[test]
    fn empty_pivot_sample() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let b = betweenness_sampled(&g, &[], 2);
        assert!(b.node.iter().all(|&x| x == 0.0));
        assert!(b.edge.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn disconnected_components_independent() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let b = betweenness_exact(&g, 2);
        assert_close(b.node[1], 1.0);
        assert_close(b.node[4], 1.0);
        assert_close(b.node[0], 0.0);
        assert_close(b.node[3], 0.0);
    }
}
