//! Breadth-first single-source shortest paths for unit-weight graphs.
//!
//! BFS is *the* unit of computational cost in the paper: every algorithm is
//! granted a budget of `2m` single-source shortest-path computations. The
//! implementation therefore avoids per-call allocation via [`BfsWorkspace`]
//! so that the cost model reflects graph traversal, not allocator churn.

use crate::graph::{Graph, NodeId};
use crate::INF;

/// Reusable scratch space for BFS: the distance row double-buffers as the
/// visited set (a node is visited iff its distance is finite).
#[derive(Default)]
pub struct BfsWorkspace {
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

impl BfsWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes unit-weight shortest-path distances from `src` into `dist`.
///
/// `dist` is resized to `graph.num_nodes()` and fully overwritten;
/// unreachable nodes get [`INF`].
pub fn bfs_into(graph: &Graph, src: NodeId, dist: &mut Vec<u32>, ws: &mut BfsWorkspace) {
    let n = graph.num_nodes();
    dist.clear();
    dist.resize(n, INF);
    ws.frontier.clear();
    ws.next.clear();

    dist[src.index()] = 0;
    ws.frontier.push(src);
    let mut level: u32 = 0;
    while !ws.frontier.is_empty() {
        level += 1;
        for &u in &ws.frontier {
            for &v in graph.neighbors(u) {
                if dist[v.index()] == INF {
                    dist[v.index()] = level;
                    ws.next.push(v);
                }
            }
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next);
        ws.next.clear();
    }
}

/// Allocating convenience wrapper around [`bfs_into`].
pub fn bfs(graph: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = Vec::new();
    let mut ws = BfsWorkspace::new();
    bfs_into(graph, src, &mut dist, &mut ws);
    dist
}

/// BFS that stops once all nodes within `max_depth` hops are settled.
///
/// Distances beyond `max_depth` are left at [`INF`]. Used by bounded
/// neighborhood probes (e.g. the Selective Expansion variant of the
/// Incidence baseline).
pub fn bfs_bounded(graph: &Graph, src: NodeId, max_depth: u32) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut dist = vec![INF; n];
    let mut frontier = vec![src];
    let mut next = Vec::new();
    dist[src.index()] = 0;
    let mut level = 0;
    while !frontier.is_empty() && level < max_depth {
        level += 1;
        for &u in &frontier {
            for &v in graph.neighbors(u) {
                if dist[v.index()] == INF {
                    dist[v.index()] = level;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// Returns the farthest node from `src` (smallest id breaks ties) and its
/// distance, considering only reachable nodes. Building block of the
/// double-sweep diameter bound and the greedy dispersion selectors.
pub fn farthest_node(graph: &Graph, src: NodeId) -> (NodeId, u32) {
    let dist = bfs(graph, src);
    let mut best = (src, 0u32);
    for (i, &d) in dist.iter().enumerate() {
        if d != INF && d > best.1 {
            best = (NodeId::new(i), d);
        }
    }
    best
}

/// Computes the eccentricity of `src` (max finite distance from it).
pub fn eccentricity(graph: &Graph, src: NodeId) -> u32 {
    bfs(graph, src)
        .into_iter()
        .filter(|&d| d != INF)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn path5() -> Graph {
        graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_on_path() {
        let g = path5();
        assert_eq!(bfs(&g, NodeId(0)), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&g, NodeId(2)), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_disconnected() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let d = bfs(&g, NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn workspace_reuse_gives_same_results() {
        let g = path5();
        let mut ws = BfsWorkspace::new();
        let mut dist = Vec::new();
        bfs_into(&g, NodeId(0), &mut dist, &mut ws);
        let first = dist.clone();
        bfs_into(&g, NodeId(4), &mut dist, &mut ws);
        assert_eq!(dist, vec![4, 3, 2, 1, 0]);
        bfs_into(&g, NodeId(0), &mut dist, &mut ws);
        assert_eq!(dist, first);
    }

    #[test]
    fn bounded_bfs_truncates() {
        let g = path5();
        let d = bfs_bounded(&g, NodeId(0), 2);
        assert_eq!(d, vec![0, 1, 2, INF, INF]);
        let full = bfs_bounded(&g, NodeId(0), 100);
        assert_eq!(full, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn farthest_and_eccentricity() {
        let g = path5();
        assert_eq!(farthest_node(&g, NodeId(0)), (NodeId(4), 4));
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
        // Isolated source: eccentricity 0, farthest is itself.
        let g2 = graph_from_edges(3, &[(1, 2)]);
        assert_eq!(farthest_node(&g2, NodeId(0)), (NodeId(0), 0));
        assert_eq!(eccentricity(&g2, NodeId(0)), 0);
    }

    #[test]
    fn bfs_single_node_graph() {
        let g = graph_from_edges(1, &[]);
        assert_eq!(bfs(&g, NodeId(0)), vec![0]);
    }
}
