//! Breadth-first single-source shortest paths for unit-weight graphs.
//!
//! BFS is *the* unit of computational cost in the paper: every algorithm is
//! granted a budget of `2m` single-source shortest-path computations, so BFS
//! throughput is pipeline throughput. Two kernels live here:
//!
//! * [`bfs_into`] — the default **direction-optimizing** kernel (Beamer,
//!   Asanović, Patterson: "Direction-Optimizing Breadth-First Search"). It
//!   runs classic top-down level expansion while the frontier is sparse and
//!   switches to a bottom-up sweep — every *unvisited* node scans its own
//!   adjacency for a frontier parent — once the frontier's outgoing-edge sum
//!   dominates the unexplored remainder. The frontier doubles as a `u64`-word
//!   bitset in bottom-up mode so the parent test is one AND per probe.
//! * [`bfs_scalar_into`] — the plain top-down kernel, kept as the reference
//!   implementation for A/B runs (`CP_BFS_KERNEL=scalar`) and for the
//!   kernel-equivalence property tests.
//!
//! Both kernels produce bit-identical distance rows: BFS levels are uniquely
//! determined by the graph, so traversal direction never shows in the output.
//! The multi-source companion kernel lives in [`crate::msbfs`].
//!
//! The implementation avoids per-call allocation via [`BfsWorkspace`] so
//! that the cost model reflects graph traversal, not allocator churn.

use crate::csr::GraphView;
use crate::graph::NodeId;
use crate::INF;

/// Work performed by a traversal kernel, accumulated across calls.
///
/// `settled` counts nodes whose distance was finalized (the source
/// included); `relaxed` counts adjacency entries examined. Both are pure
/// diagnostics: they never influence the distances a kernel produces, only
/// report how much internal work producing them took — the quantity the
/// bound-truncated kernels exist to shrink while the budget *ledger*
/// (charged SSSPs) stays bit-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalWork {
    /// Nodes whose distance was finalized.
    pub settled: u64,
    /// Adjacency entries examined (edge relaxations / parent probes).
    pub relaxed: u64,
}

impl TraversalWork {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates another counter into this one.
    pub fn merge(&mut self, other: TraversalWork) {
        self.settled += other.settled;
        self.relaxed += other.relaxed;
    }
}

/// Growth factor of the Beamer top-down → bottom-up switch: go bottom-up
/// when `frontier_edges > remaining_edges / ALPHA`. The published tuning
/// (α = 14) carries over well to the paper's social/web-like snapshots.
const ALPHA: usize = 14;

/// Shrink factor of the bottom-up → top-down switch: return to top-down
/// when the frontier holds fewer than `n / BETA` nodes (β = 24, ibid.).
const BETA: usize = 24;

/// Node count below which the hybrid heuristic is not worth its bitset
/// bookkeeping and [`bfs_into`] stays purely top-down.
const HYBRID_MIN_NODES: usize = 256;

/// Reusable scratch space for BFS: the distance row double-buffers as the
/// visited set (a node is visited iff its distance is finite), and the
/// bitset pair backs the bottom-up frontier of the hybrid kernel.
#[derive(Default)]
pub struct BfsWorkspace {
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    /// Current frontier as a bitset, one bit per node (bottom-up mode).
    front_bits: Vec<u64>,
    /// Next frontier being built by the bottom-up sweep.
    next_bits: Vec<u64>,
}

impl BfsWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes unit-weight shortest-path distances from `src` into `dist`
/// with the direction-optimizing kernel.
///
/// `dist` is resized to `graph.num_nodes()` and fully overwritten;
/// unreachable nodes get [`INF`]. The result is bit-identical to
/// [`bfs_scalar_into`] — only the wall clock differs.
pub fn bfs_into<V: GraphView>(graph: &V, src: NodeId, dist: &mut Vec<u32>, ws: &mut BfsWorkspace) {
    bfs_limited_into(graph, src, dist, ws, INF, &mut TraversalWork::new());
}

/// Depth-limited, work-counted variant of [`bfs_into`].
///
/// Expansion stops before any level `> limit` would be produced: every
/// node within `limit` hops receives its exact BFS distance, every node
/// beyond stays [`INF`]. With `limit == INF` the output is identical to
/// [`bfs_into`]. Returns `true` iff the traversal was actually cut short
/// (the frontier was still non-empty at the cutoff). `work` accumulates
/// settled nodes and examined adjacency entries across the call.
pub fn bfs_limited_into<V: GraphView>(
    graph: &V,
    src: NodeId,
    dist: &mut Vec<u32>,
    ws: &mut BfsWorkspace,
    limit: u32,
    work: &mut TraversalWork,
) -> bool {
    let n = graph.num_nodes();
    dist.clear();
    dist.resize(n, INF);
    ws.frontier.clear();
    ws.next.clear();

    dist[src.index()] = 0;
    work.settled += 1;
    ws.frontier.push(src);
    if n < HYBRID_MIN_NODES {
        return top_down_limited(graph, dist, ws, limit, work);
    }

    // Split the workspace into disjoint field borrows so the traversal
    // closures can mutate one buffer while another is being iterated.
    let BfsWorkspace {
        frontier,
        next,
        front_bits,
        next_bits,
    } = ws;

    let total_arcs = graph.num_arcs();
    let mut frontier_edges = graph.degree(src);
    let mut remaining_edges = total_arcs - frontier_edges;
    let mut frontier_len = 1usize;
    let words = n.div_ceil(64);
    let mut bottom_up = false;
    let mut level: u32 = 0;

    while frontier_len > 0 {
        if level >= limit {
            return true;
        }
        level += 1;
        if !bottom_up && frontier_edges * ALPHA > remaining_edges {
            // Frontier is edge-heavy: scanning unvisited nodes for a parent
            // is cheaper than expanding the frontier's adjacency.
            front_bits.clear();
            front_bits.resize(words, 0);
            for &u in frontier.iter() {
                front_bits[u.index() >> 6] |= 1u64 << (u.index() & 63);
            }
            bottom_up = true;
        } else if bottom_up && frontier_len * BETA < n {
            // Frontier thinned out again: back to top-down.
            frontier.clear();
            for (w, &word) in front_bits.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    frontier.push(NodeId::new((w << 6) | b));
                    bits &= bits - 1;
                }
            }
            bottom_up = false;
        }

        frontier_len = 0;
        frontier_edges = 0;
        if bottom_up {
            next_bits.clear();
            next_bits.resize(words, 0);
            for (v, d) in dist.iter_mut().enumerate() {
                if *d != INF {
                    continue;
                }
                // Probe this unvisited node's adjacency for a frontier
                // parent, counting every probe as one examined entry.
                let has_parent = graph.any_neighbor(NodeId::new(v), |u| {
                    work.relaxed += 1;
                    front_bits[u.index() >> 6] & (1u64 << (u.index() & 63)) != 0
                });
                if has_parent {
                    *d = level;
                    work.settled += 1;
                    next_bits[v >> 6] |= 1u64 << (v & 63);
                    frontier_len += 1;
                    let deg = graph.degree(NodeId::new(v));
                    frontier_edges += deg;
                    remaining_edges -= deg;
                }
            }
            std::mem::swap(front_bits, next_bits);
        } else {
            next.clear();
            for &u in frontier.iter() {
                graph.for_each_neighbor(u, |v| {
                    work.relaxed += 1;
                    if dist[v.index()] == INF {
                        dist[v.index()] = level;
                        work.settled += 1;
                        next.push(v);
                        let deg = graph.degree(v);
                        frontier_edges += deg;
                        remaining_edges -= deg;
                    }
                });
            }
            frontier_len = next.len();
            std::mem::swap(frontier, next);
        }
    }
    false
}

/// The purely top-down level expansion over an already-seeded workspace
/// frontier (shared by the small-graph path and [`bfs_scalar_into`]).
/// Stops before producing any level `> limit`; returns `true` iff cut
/// short with the frontier still non-empty.
fn top_down_limited<V: GraphView>(
    graph: &V,
    dist: &mut [u32],
    ws: &mut BfsWorkspace,
    limit: u32,
    work: &mut TraversalWork,
) -> bool {
    let BfsWorkspace { frontier, next, .. } = ws;
    let mut level: u32 = 0;
    while !frontier.is_empty() {
        if level >= limit {
            return true;
        }
        level += 1;
        for &u in frontier.iter() {
            graph.for_each_neighbor(u, |v| {
                work.relaxed += 1;
                if dist[v.index()] == INF {
                    dist[v.index()] = level;
                    work.settled += 1;
                    next.push(v);
                }
            });
        }
        std::mem::swap(frontier, next);
        next.clear();
    }
    false
}

/// The scalar (always top-down) reference kernel. Same output as
/// [`bfs_into`]; exists so A/B runs and equivalence tests can pin the
/// pre-optimization behaviour (`CP_BFS_KERNEL=scalar`).
pub fn bfs_scalar_into<V: GraphView>(
    graph: &V,
    src: NodeId,
    dist: &mut Vec<u32>,
    ws: &mut BfsWorkspace,
) {
    bfs_scalar_limited_into(graph, src, dist, ws, INF, &mut TraversalWork::new());
}

/// Depth-limited, work-counted variant of [`bfs_scalar_into`]; same
/// truncation contract as [`bfs_limited_into`].
pub fn bfs_scalar_limited_into<V: GraphView>(
    graph: &V,
    src: NodeId,
    dist: &mut Vec<u32>,
    ws: &mut BfsWorkspace,
    limit: u32,
    work: &mut TraversalWork,
) -> bool {
    let n = graph.num_nodes();
    dist.clear();
    dist.resize(n, INF);
    ws.frontier.clear();
    ws.next.clear();
    dist[src.index()] = 0;
    work.settled += 1;
    ws.frontier.push(src);
    top_down_limited(graph, dist, ws, limit, work)
}

/// Allocating convenience wrapper around [`bfs_into`].
pub fn bfs<V: GraphView>(graph: &V, src: NodeId) -> Vec<u32> {
    let mut dist = Vec::new();
    let mut ws = BfsWorkspace::new();
    bfs_into(graph, src, &mut dist, &mut ws);
    dist
}

/// BFS that stops once all nodes within `max_depth` hops are settled,
/// writing into a caller-provided row and workspace.
///
/// Distances beyond `max_depth` are left at [`INF`]. Bounded probes have
/// small frontiers by construction, so this stays top-down.
pub fn bfs_bounded_into<V: GraphView>(
    graph: &V,
    src: NodeId,
    max_depth: u32,
    dist: &mut Vec<u32>,
    ws: &mut BfsWorkspace,
) {
    let n = graph.num_nodes();
    dist.clear();
    dist.resize(n, INF);
    let BfsWorkspace { frontier, next, .. } = ws;
    frontier.clear();
    next.clear();
    dist[src.index()] = 0;
    frontier.push(src);
    let mut level = 0;
    while !frontier.is_empty() && level < max_depth {
        level += 1;
        for &u in frontier.iter() {
            graph.for_each_neighbor(u, |v| {
                if dist[v.index()] == INF {
                    dist[v.index()] = level;
                    next.push(v);
                }
            });
        }
        std::mem::swap(frontier, next);
        next.clear();
    }
}

/// Allocating convenience wrapper around [`bfs_bounded_into`]. Used by
/// bounded neighborhood probes (e.g. the Selective Expansion variant of
/// the Incidence baseline).
pub fn bfs_bounded<V: GraphView>(graph: &V, src: NodeId, max_depth: u32) -> Vec<u32> {
    let mut dist = Vec::new();
    let mut ws = BfsWorkspace::new();
    bfs_bounded_into(graph, src, max_depth, &mut dist, &mut ws);
    dist
}

/// Returns the farthest node from `src` (smallest id breaks ties) and its
/// distance, considering only reachable nodes, reusing the caller's row
/// and workspace. Building block of the double-sweep diameter bound and
/// the greedy dispersion selectors.
pub fn farthest_node_into<V: GraphView>(
    graph: &V,
    src: NodeId,
    dist: &mut Vec<u32>,
    ws: &mut BfsWorkspace,
) -> (NodeId, u32) {
    bfs_into(graph, src, dist, ws);
    let mut best = (src, 0u32);
    for (i, &d) in dist.iter().enumerate() {
        if d != INF && d > best.1 {
            best = (NodeId::new(i), d);
        }
    }
    best
}

/// Allocating convenience wrapper around [`farthest_node_into`].
pub fn farthest_node<V: GraphView>(graph: &V, src: NodeId) -> (NodeId, u32) {
    let mut dist = Vec::new();
    let mut ws = BfsWorkspace::new();
    farthest_node_into(graph, src, &mut dist, &mut ws)
}

/// Computes the eccentricity of `src` (max finite distance from it),
/// reusing the caller's row and workspace.
pub fn eccentricity_into<V: GraphView>(
    graph: &V,
    src: NodeId,
    dist: &mut Vec<u32>,
    ws: &mut BfsWorkspace,
) -> u32 {
    farthest_node_into(graph, src, dist, ws).1
}

/// Allocating convenience wrapper around [`eccentricity_into`].
pub fn eccentricity<V: GraphView>(graph: &V, src: NodeId) -> u32 {
    let mut dist = Vec::new();
    let mut ws = BfsWorkspace::new();
    eccentricity_into(graph, src, &mut dist, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::graph::Graph;

    fn path5() -> Graph {
        graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_on_path() {
        let g = path5();
        assert_eq!(bfs(&g, NodeId(0)), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&g, NodeId(2)), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_disconnected() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let d = bfs(&g, NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn workspace_reuse_gives_same_results() {
        let g = path5();
        let mut ws = BfsWorkspace::new();
        let mut dist = Vec::new();
        bfs_into(&g, NodeId(0), &mut dist, &mut ws);
        let first = dist.clone();
        bfs_into(&g, NodeId(4), &mut dist, &mut ws);
        assert_eq!(dist, vec![4, 3, 2, 1, 0]);
        bfs_into(&g, NodeId(0), &mut dist, &mut ws);
        assert_eq!(dist, first);
    }

    #[test]
    fn hybrid_matches_scalar_above_cutoff() {
        // A graph large and dense enough to actually trigger the bottom-up
        // switch: two hub-and-spoke stars bridged by an edge.
        let n = 2 * HYBRID_MIN_NODES as u32;
        let mut edges: Vec<(u32, u32)> = (1..n / 2).map(|i| (0, i)).collect();
        edges.extend((n / 2 + 1..n).map(|i| (n / 2, i)));
        edges.push((0, n / 2));
        let g = graph_from_edges(n as usize, &edges);
        let mut ws = BfsWorkspace::new();
        let (mut hybrid, mut scalar) = (Vec::new(), Vec::new());
        for src in [0u32, 1, n / 2, n - 1] {
            bfs_into(&g, NodeId(src), &mut hybrid, &mut ws);
            bfs_scalar_into(&g, NodeId(src), &mut scalar, &mut ws);
            assert_eq!(hybrid, scalar, "src {src}");
        }
    }

    #[test]
    fn hybrid_matches_scalar_on_disconnected_large_graph() {
        // Hub component + a far path component + isolated nodes; the hub
        // expansion crosses the direction switch while whole components
        // stay unreachable.
        let n = 600u32;
        let mut edges: Vec<(u32, u32)> = (1..400).map(|i| (0, i)).collect();
        edges.extend((400..500 - 1).map(|i| (i, i + 1)));
        let g = graph_from_edges(n as usize, &edges);
        let mut ws = BfsWorkspace::new();
        let (mut hybrid, mut scalar) = (Vec::new(), Vec::new());
        for src in [0u32, 450, 599] {
            bfs_into(&g, NodeId(src), &mut hybrid, &mut ws);
            bfs_scalar_into(&g, NodeId(src), &mut scalar, &mut ws);
            assert_eq!(hybrid, scalar, "src {src}");
        }
    }

    #[test]
    fn bounded_bfs_truncates() {
        let g = path5();
        let d = bfs_bounded(&g, NodeId(0), 2);
        assert_eq!(d, vec![0, 1, 2, INF, INF]);
        let full = bfs_bounded(&g, NodeId(0), 100);
        assert_eq!(full, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_into_reuses_buffers() {
        let g = path5();
        let mut ws = BfsWorkspace::new();
        let mut dist = Vec::new();
        bfs_bounded_into(&g, NodeId(0), 2, &mut dist, &mut ws);
        assert_eq!(dist, vec![0, 1, 2, INF, INF]);
        bfs_bounded_into(&g, NodeId(4), 1, &mut dist, &mut ws);
        assert_eq!(dist, vec![INF, INF, INF, 1, 0]);
    }

    #[test]
    fn farthest_and_eccentricity() {
        let g = path5();
        assert_eq!(farthest_node(&g, NodeId(0)), (NodeId(4), 4));
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
        // Isolated source: eccentricity 0, farthest is itself.
        let g2 = graph_from_edges(3, &[(1, 2)]);
        assert_eq!(farthest_node(&g2, NodeId(0)), (NodeId(0), 0));
        assert_eq!(eccentricity(&g2, NodeId(0)), 0);
    }

    #[test]
    fn farthest_into_shares_workspace() {
        let g = path5();
        let mut ws = BfsWorkspace::new();
        let mut dist = Vec::new();
        let (far, d) = farthest_node_into(&g, NodeId(0), &mut dist, &mut ws);
        assert_eq!((far, d), (NodeId(4), 4));
        assert_eq!(eccentricity_into(&g, far, &mut dist, &mut ws), 4);
    }

    #[test]
    fn bfs_single_node_graph() {
        let g = graph_from_edges(1, &[]);
        assert_eq!(bfs(&g, NodeId(0)), vec![0]);
    }

    #[test]
    fn limited_with_inf_matches_unlimited() {
        let g = path5();
        let mut ws = BfsWorkspace::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for src in 0..5u32 {
            let mut work = TraversalWork::new();
            let cut = bfs_limited_into(&g, NodeId(src), &mut a, &mut ws, INF, &mut work);
            bfs_into(&g, NodeId(src), &mut b, &mut ws);
            assert!(!cut, "src {src}");
            assert_eq!(a, b, "src {src}");
            assert!(work.settled > 0 && work.relaxed > 0);
        }
    }

    #[test]
    fn limited_truncates_at_depth_and_reports_it() {
        let g = path5();
        let mut ws = BfsWorkspace::new();
        let mut dist = Vec::new();
        let mut work = TraversalWork::new();
        let cut = bfs_limited_into(&g, NodeId(0), &mut dist, &mut ws, 2, &mut work);
        assert!(cut);
        assert_eq!(dist, vec![0, 1, 2, INF, INF]);
        // Exactly the prefix within the limit is settled.
        assert_eq!(work.settled, 3);
        // A limit past the last-discovery level cuts nothing. (The flag is
        // conservative: at limit == eccentricity the frontier still holds
        // the final node, so only limit > eccentricity reports a clean
        // drain.)
        let mut full_work = TraversalWork::new();
        let cut = bfs_limited_into(&g, NodeId(0), &mut dist, &mut ws, 5, &mut full_work);
        assert!(!cut);
        assert_eq!(dist, vec![0, 1, 2, 3, 4]);
        assert!(work.relaxed < full_work.relaxed, "truncation saves work");
    }

    #[test]
    fn limited_scalar_matches_limited_hybrid_above_cutoff() {
        // Same star-pair shape as `hybrid_matches_scalar_above_cutoff`, so
        // the bottom-up branch of the limited kernel is exercised too.
        let n = 2 * HYBRID_MIN_NODES as u32;
        let mut edges: Vec<(u32, u32)> = (1..n / 2).map(|i| (0, i)).collect();
        edges.extend((n / 2 + 1..n).map(|i| (n / 2, i)));
        edges.push((0, n / 2));
        let g = graph_from_edges(n as usize, &edges);
        let mut ws = BfsWorkspace::new();
        let (mut hybrid, mut scalar) = (Vec::new(), Vec::new());
        for limit in [0u32, 1, 2, 3, INF] {
            for src in [0u32, 1, n - 1] {
                let ch = bfs_limited_into(
                    &g,
                    NodeId(src),
                    &mut hybrid,
                    &mut ws,
                    limit,
                    &mut TraversalWork::new(),
                );
                let cs = bfs_scalar_limited_into(
                    &g,
                    NodeId(src),
                    &mut scalar,
                    &mut ws,
                    limit,
                    &mut TraversalWork::new(),
                );
                assert_eq!(hybrid, scalar, "src {src} limit {limit}");
                assert_eq!(ch, cs, "src {src} limit {limit}");
            }
        }
    }
}
