//! Shared-structure snapshots: base CSR + O(Δ) insertion overlay.
//!
//! The paper's evolution model only ever inserts edges, so a snapshot pair
//! `(G_t1, G_t2)` satisfies `E_t1 ⊆ E_t2`. [`OverlayGraph`] exploits that:
//! it *borrows* the t1 CSR as its base and stores only the inserted arcs in
//! a small per-node side table, presenting the full t2 adjacency through a
//! sorted two-pointer merge. t2 therefore costs O(Δ) memory and zero
//! rebuild instead of a second full CSR, and the merge visits neighbors in
//! exactly the same ascending order as the materialized t2 `Graph` — so
//! traversal kernels produce bit-identical rows *and* bit-identical work
//! counters over either representation.
//!
//! The overlay also carries the normalized inserted-edge list it was built
//! from, which is precisely the [`SnapshotDelta`] the repair kernels need:
//! an overlay-backed pair gets its delta in O(Δ) via [`OverlayGraph::
//! to_delta`] instead of the O(E) containment scan of [`snapshot_delta`].
//!
//! [`snapshot_delta`]: crate::repair::snapshot_delta

use crate::csr::GraphView;
use crate::graph::{Graph, NodeId};
use crate::repair::{InsertedEdge, SnapshotDelta};

/// A grown snapshot sharing its base CSR with the previous snapshot.
///
/// Invariants (checked in debug builds at construction):
/// * every inserted edge is absent from the base,
/// * the inserted list is normalized (`u < v`) and strictly ascending,
/// * unweighted overlays only carry unit-weight insertions.
pub struct OverlayGraph<'g> {
    base: &'g Graph,
    /// Arc offsets into `extra_targets` (`n + 1` entries).
    extra_offsets: Vec<u32>,
    /// Inserted arcs per node, sorted ascending within each node.
    extra_targets: Vec<NodeId>,
    /// Weights parallel to `extra_targets`; `None` for unit weights.
    extra_weights: Option<Vec<u32>>,
    /// Whether the *logical* snapshot is weighted. May be `true` with an
    /// unweighted base (base arcs then count as weight 1).
    weighted: bool,
    /// The normalized `E_t2 \ E_t1` this overlay was built from.
    inserted: Vec<InsertedEdge>,
    num_edges: usize,
}

impl<'g> OverlayGraph<'g> {
    /// Builds the overlay for `base + inserted`. `inserted` must be
    /// normalized (`u < v`, strictly ascending) and disjoint from the base
    /// edge set — exactly the shape [`snapshot_delta`] and the streaming
    /// accumulator produce. `weighted` sets the logical snapshot's
    /// weightedness so kernel dispatch matches the materialized t2 graph.
    ///
    /// [`snapshot_delta`]: crate::repair::snapshot_delta
    pub fn from_delta(base: &'g Graph, inserted: Vec<InsertedEdge>, weighted: bool) -> Self {
        let n = base.num_nodes();
        debug_assert!(
            inserted
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "inserted edges must be normalized and strictly ascending"
        );
        let mut counts = vec![0u32; n];
        for &(u, v, w) in &inserted {
            debug_assert!(u < v, "inserted edges must be normalized u < v");
            debug_assert!(u.index() < n && v.index() < n, "insertion outside universe");
            debug_assert!(!base.has_edge(u, v), "inserted edge already in base");
            debug_assert!(weighted || w == 1, "unweighted overlay fed weight {w}");
            counts[u.index()] += 1;
            counts[v.index()] += 1;
        }
        let mut extra_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        extra_offsets.push(0);
        for &c in &counts {
            acc += c;
            extra_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = extra_offsets[..n].to_vec();
        let mut extra_targets = vec![NodeId(0); acc as usize];
        let mut extra_weights = weighted.then(|| vec![0u32; acc as usize]);
        for &(u, v, w) in &inserted {
            for (x, y) in [(u, v), (v, u)] {
                let slot = cursor[x.index()] as usize;
                extra_targets[slot] = y;
                if let Some(ws) = extra_weights.as_mut() {
                    ws[slot] = w;
                }
                cursor[x.index()] += 1;
            }
        }
        // Arcs arrive grouped by insertion order, not target order; each
        // node's side list must be ascending for the merge to work.
        for u in 0..n {
            let range = extra_offsets[u] as usize..extra_offsets[u + 1] as usize;
            match extra_weights.as_mut() {
                Some(ws) => {
                    let mut pairs: Vec<(NodeId, u32)> = extra_targets[range.clone()]
                        .iter()
                        .copied()
                        .zip(ws[range.clone()].iter().copied())
                        .collect();
                    pairs.sort_unstable_by_key(|&(t, _)| t);
                    for (i, &(t, w)) in pairs.iter().enumerate() {
                        extra_targets[range.start + i] = t;
                        ws[range.start + i] = w;
                    }
                }
                None => extra_targets[range].sort_unstable(),
            }
        }
        let num_edges = base.num_edges() + inserted.len();
        OverlayGraph {
            base,
            extra_offsets,
            extra_targets,
            extra_weights,
            weighted,
            inserted,
            num_edges,
        }
    }

    /// The borrowed base (t1) snapshot.
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Number of undirected edges in the logical (t2) snapshot.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The inserted edges this overlay adds to its base, normalized.
    pub fn inserted(&self) -> &[InsertedEdge] {
        &self.inserted
    }

    /// Arcs shared with (borrowed from) the base CSR.
    pub fn shared_arcs(&self) -> usize {
        self.base.num_arcs()
    }

    /// Arcs owned by the overlay side table (`2 · |Δ|`).
    pub fn extra_arcs(&self) -> usize {
        self.extra_targets.len()
    }

    /// The snapshot delta this overlay encodes, in O(Δ) — the fast path
    /// replacing the O(E) containment scan for overlay-backed pairs.
    pub fn to_delta(&self) -> SnapshotDelta {
        SnapshotDelta {
            growth_only: true,
            inserted: self.inserted.clone(),
        }
    }

    #[inline]
    fn extra_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.extra_offsets[u.index()] as usize..self.extra_offsets[u.index() + 1] as usize
    }
}

impl GraphView for OverlayGraph<'_> {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        2 * self.num_edges
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        self.base.degree(u) + self.extra_range(u).len()
    }

    #[inline]
    fn is_weighted(&self) -> bool {
        self.weighted
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        let base = self.base.neighbors(u);
        let extra = &self.extra_targets[self.extra_range(u)];
        let (mut i, mut j) = (0, 0);
        // Base and extra lists are each sorted and mutually disjoint, so a
        // two-pointer merge yields the exact ascending order a materialized
        // t2 CSR would store.
        while i < base.len() && j < extra.len() {
            if base[i] < extra[j] {
                f(base[i]);
                i += 1;
            } else {
                f(extra[j]);
                j += 1;
            }
        }
        for &v in &base[i..] {
            f(v);
        }
        for &v in &extra[j..] {
            f(v);
        }
    }

    #[inline]
    fn any_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId) -> bool) -> bool {
        let base = self.base.neighbors(u);
        let extra = &self.extra_targets[self.extra_range(u)];
        let (mut i, mut j) = (0, 0);
        while i < base.len() && j < extra.len() {
            let v = if base[i] < extra[j] {
                i += 1;
                base[i - 1]
            } else {
                j += 1;
                extra[j - 1]
            };
            if f(v) {
                return true;
            }
        }
        while i < base.len() {
            if f(base[i]) {
                return true;
            }
            i += 1;
        }
        while j < extra.len() {
            if f(extra[j]) {
                return true;
            }
            j += 1;
        }
        false
    }

    #[inline]
    fn for_each_neighbor_weighted(&self, u: NodeId, mut f: impl FnMut(NodeId, u32)) {
        let range = self.extra_range(u);
        let extra = &self.extra_targets[range.clone()];
        let extra_w = self.extra_weights.as_deref();
        let extra_weight = |j: usize| extra_w.map_or(1, |ws| ws[range.start + j]);
        let mut base = self.base.neighbors_with_edge_ids(u).peekable();
        let mut j = 0;
        loop {
            match (base.peek().copied(), extra.get(j).copied()) {
                (Some((bv, e)), Some(ev)) => {
                    if bv < ev {
                        f(bv, self.base.edge_weight(e));
                        base.next();
                    } else {
                        f(ev, extra_weight(j));
                        j += 1;
                    }
                }
                (Some((bv, e)), None) => {
                    f(bv, self.base.edge_weight(e));
                    base.next();
                }
                (None, Some(ev)) => {
                    f(ev, extra_weight(j));
                    j += 1;
                }
                (None, None) => break,
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.extra_offsets.len() * std::mem::size_of::<u32>()
            + self.extra_targets.len() * std::mem::size_of::<NodeId>()
            + self
                .extra_weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<u32>())
            + self.inserted.len() * std::mem::size_of::<InsertedEdge>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, GraphBuilder};
    use crate::repair::snapshot_delta;

    fn grown_pair() -> (Graph, Graph) {
        let base: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3), (4, 5), (0, 6)];
        let mut grown = base.clone();
        grown.extend([(3, 4), (0, 7), (2, 6)]);
        (graph_from_edges(8, &base), graph_from_edges(8, &grown))
    }

    fn adjacency<V: GraphView>(g: &V, u: usize) -> Vec<usize> {
        let mut out = Vec::new();
        g.for_each_neighbor(NodeId::new(u), |v| out.push(v.index()));
        out
    }

    #[test]
    fn overlay_matches_materialized_snapshot() {
        let (g1, g2) = grown_pair();
        let delta = snapshot_delta(&g1, &g2);
        assert!(delta.growth_only);
        let ov = OverlayGraph::from_delta(&g1, delta.inserted, g2.is_weighted());
        assert_eq!(GraphView::num_nodes(&ov), g2.num_nodes());
        assert_eq!(GraphView::num_arcs(&ov), g2.num_arcs());
        assert_eq!(ov.num_edges(), g2.num_edges());
        for u in 0..g2.num_nodes() {
            assert_eq!(
                GraphView::degree(&ov, NodeId::new(u)),
                g2.degree(NodeId::new(u))
            );
            let full: Vec<usize> = g2
                .neighbors(NodeId::new(u))
                .iter()
                .map(|v| v.index())
                .collect();
            assert_eq!(adjacency(&ov, u), full, "node {u}");
        }
    }

    #[test]
    fn overlay_weighted_merge_reports_weights() {
        let mut b1 = GraphBuilder::new(5);
        b1.add_weighted_edge(NodeId(0), NodeId(1), 4);
        b1.add_weighted_edge(NodeId(1), NodeId(2), 3);
        let g1 = b1.build();
        let mut b2 = GraphBuilder::new(5);
        b2.add_weighted_edge(NodeId(0), NodeId(1), 4);
        b2.add_weighted_edge(NodeId(1), NodeId(2), 3);
        b2.add_weighted_edge(NodeId(0), NodeId(3), 2);
        b2.add_weighted_edge(NodeId(1), NodeId(4), 9);
        let g2 = b2.build();
        let delta = snapshot_delta(&g1, &g2);
        let ov = OverlayGraph::from_delta(&g1, delta.inserted, true);
        assert!(GraphView::is_weighted(&ov));
        for u in 0..g2.num_nodes() {
            let mut full = Vec::new();
            g2.for_each_neighbor_weighted(NodeId::new(u), |v, w| full.push((v.index(), w)));
            let mut over = Vec::new();
            ov.for_each_neighbor_weighted(NodeId::new(u), |v, w| over.push((v.index(), w)));
            assert_eq!(over, full, "node {u}");
        }
    }

    #[test]
    fn to_delta_round_trips() {
        let (g1, g2) = grown_pair();
        let slow = snapshot_delta(&g1, &g2);
        let ov = OverlayGraph::from_delta(&g1, slow.inserted.clone(), false);
        let fast = ov.to_delta();
        assert!(fast.growth_only);
        assert_eq!(fast.inserted, slow.inserted);
    }

    #[test]
    fn memory_is_delta_sized() {
        let (g1, g2) = grown_pair();
        let delta = snapshot_delta(&g1, &g2);
        let n_inserted = delta.inserted.len();
        let ov = OverlayGraph::from_delta(&g1, delta.inserted, false);
        assert_eq!(ov.extra_arcs(), 2 * n_inserted);
        assert_eq!(ov.shared_arcs(), g1.num_arcs());
        assert!(GraphView::heap_bytes(&ov) < g2.heap_bytes());
    }

    #[test]
    fn empty_delta_overlay_is_the_base() {
        let (g1, _) = grown_pair();
        let ov = OverlayGraph::from_delta(&g1, Vec::new(), false);
        assert_eq!(ov.num_edges(), g1.num_edges());
        for u in 0..g1.num_nodes() {
            let full: Vec<usize> = g1
                .neighbors(NodeId::new(u))
                .iter()
                .map(|v| v.index())
                .collect();
            assert_eq!(adjacency(&ov, u), full);
        }
    }
}
