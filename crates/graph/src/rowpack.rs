//! Compact distance-row storage: `u16` packing and a pooled slab arena.
//!
//! Unweighted BFS distances on a universe of `n ≤ 65 535` nodes are at most
//! `n − 1 ≤ 65 534`, so they fit in a `u16` with [`INF_U16`] left over as
//! the unreachable sentinel — half the bytes of the canonical `u32` rows,
//! which means a byte-budgeted row cache holds twice the rows and the Δ
//! scan streams twice the nodes per cache line. Weighted Dijkstra rows
//! (and universes beyond `u16`) keep the full `u32` width; [`RowRef`]
//! carries either width through a common read interface.
//!
//! [`RowArena`] pools the rows themselves: fixed-length slots carved out of
//! large contiguous slabs, recycled through a free list, so an LRU cache
//! that evicts and refills thousands of rows reuses warm slabs instead of
//! churning the allocator.

use crate::{Graph, INF};

/// Sentinel for "unreachable" in a `u16`-packed row (maps to/from [`INF`]).
pub const INF_U16: u16 = u16::MAX;

/// Whether distance rows of `graph` can be packed to `u16`: unit weights
/// (BFS distances are bounded by `n − 1`) and a node universe small enough
/// that every finite distance stays strictly below [`INF_U16`].
pub fn fits_u16(graph: &Graph) -> bool {
    !graph.is_weighted() && graph.num_nodes() <= u16::MAX as usize
}

/// Packs a `u32` distance row into a `u16` slot of the same length,
/// mapping [`INF`] to [`INF_U16`]. The caller guarantees every finite
/// distance fits (see [`fits_u16`]); debug builds assert it.
pub fn pack_u16_slice(src: &[u32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len(), "row length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        debug_assert!(
            *s == INF || *s < u32::from(INF_U16),
            "distance overflows u16"
        );
        *d = if *s == INF { INF_U16 } else { *s as u16 };
    }
}

/// Packs a `u32` row into a (cleared) `u16` buffer (see [`pack_u16_slice`]).
pub fn pack_u16_into(src: &[u32], dst: &mut Vec<u16>) {
    dst.clear();
    dst.resize(src.len(), 0);
    pack_u16_slice(src, dst);
}

/// Widens a `u16`-packed row back to `u32`, mapping [`INF_U16`] to [`INF`].
/// The exact inverse of [`pack_u16_into`] for rows that satisfied
/// [`fits_u16`] when packed.
pub fn widen_u16_into(src: &[u16], dst: &mut Vec<u32>) {
    dst.clear();
    dst.extend(src.iter().map(|&d| widen_u16(d)));
}

/// Widens one packed distance ([`INF_U16`] → [`INF`]).
#[inline]
pub fn widen_u16(d: u16) -> u32 {
    if d == INF_U16 {
        INF
    } else {
        u32::from(d)
    }
}

/// A distance row at either storage width, read through a common interface.
///
/// Borrowed from a [`RowArena`] (or a caller's scratch buffer); `get`
/// always reports canonical `u32` distances with [`INF`] as the sentinel
/// regardless of the underlying width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowRef<'a> {
    /// A `u16`-packed row ([`INF_U16`] sentinel).
    U16(&'a [u16]),
    /// A full-width row ([`INF`] sentinel).
    U32(&'a [u32]),
}

impl<'a> RowRef<'a> {
    /// Number of nodes in the row.
    pub fn len(&self) -> usize {
        match self {
            RowRef::U16(r) => r.len(),
            RowRef::U32(r) => r.len(),
        }
    }

    /// Whether the row is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical `u32` distance of node `i` ([`INF`] if unreachable).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            RowRef::U16(r) => widen_u16(r[i]),
            RowRef::U32(r) => r[i],
        }
    }

    /// The row as a canonical `u32` vector.
    pub fn to_u32_vec(&self) -> Vec<u32> {
        match self {
            RowRef::U16(r) => r.iter().map(|&d| widen_u16(d)).collect(),
            RowRef::U32(r) => r.to_vec(),
        }
    }
}

/// Handle to a row slot inside a [`RowArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowId(u32);

/// A pooled arena of fixed-length rows, stored in contiguous slabs with a
/// free list.
///
/// Slots are addressed by [`RowId`]; [`RowArena::free`] recycles a slot
/// for the next [`RowArena::alloc`] without returning memory to the
/// allocator, so steady-state eviction/refill traffic (the row cache's LRU
/// under a byte budget) runs allocation-free once the slabs are warm.
pub struct RowArena<T> {
    row_len: usize,
    rows_per_slab: usize,
    slabs: Vec<Vec<T>>,
    free: Vec<u32>,
    next: u32,
    live: u64,
    reused: u64,
}

/// Target slab size in bytes (rows per slab is derived from the row width).
const SLAB_TARGET_BYTES: usize = 1 << 20;

impl<T: Copy + Default> RowArena<T> {
    /// Creates an arena of rows of `row_len` elements each.
    pub fn new(row_len: usize) -> Self {
        let row_bytes = (row_len * std::mem::size_of::<T>()).max(1);
        RowArena {
            row_len,
            rows_per_slab: (SLAB_TARGET_BYTES / row_bytes).clamp(1, 1 << 16),
            slabs: Vec::new(),
            free: Vec::new(),
            next: 0,
            live: 0,
            reused: 0,
        }
    }

    /// Allocates a slot, recycling a freed one when available. The slot's
    /// contents are unspecified (stale or zero) — callers overwrite the
    /// full row via [`Self::row_mut`].
    pub fn alloc(&mut self) -> RowId {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.reused += 1;
            return RowId(id);
        }
        let id = self.next;
        self.next += 1;
        let slab = id as usize / self.rows_per_slab;
        if slab == self.slabs.len() {
            self.slabs
                .push(vec![T::default(); self.rows_per_slab * self.row_len]);
        }
        RowId(id)
    }

    /// Returns a slot to the free list for reuse.
    pub fn release(&mut self, id: RowId) {
        debug_assert!(id.0 < self.next, "foreign RowId");
        self.live = self.live.saturating_sub(1);
        self.free.push(id.0);
    }

    /// The row stored in `id`'s slot.
    pub fn row(&self, id: RowId) -> &[T] {
        let (slab, off) = self.locate(id);
        &self.slabs[slab][off..off + self.row_len]
    }

    /// Mutable access to `id`'s slot.
    pub fn row_mut(&mut self, id: RowId) -> &mut [T] {
        let (slab, off) = self.locate(id);
        &mut self.slabs[slab][off..off + self.row_len]
    }

    fn locate(&self, id: RowId) -> (usize, usize) {
        let i = id.0 as usize;
        (
            i / self.rows_per_slab,
            (i % self.rows_per_slab) * self.row_len,
        )
    }

    /// Bytes of one row's payload.
    pub fn row_bytes(&self) -> usize {
        self.row_len * std::mem::size_of::<T>()
    }

    /// Rows currently allocated (alloc'd minus released).
    pub fn live_rows(&self) -> u64 {
        self.live
    }

    /// Allocations served from the free list instead of fresh slab space.
    pub fn reused_rows(&self) -> u64 {
        self.reused
    }

    /// Bytes of slab capacity currently held (live and free slots alike).
    pub fn slab_bytes(&self) -> u64 {
        (self.slabs.len() * self.rows_per_slab * self.row_len * std::mem::size_of::<T>()) as u64
    }

    /// Drops every slab and resets the arena (memory pressure relief).
    /// All outstanding [`RowId`]s are invalidated.
    pub fn clear(&mut self) {
        self.slabs.clear();
        self.free.clear();
        self.next = 0;
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, GraphBuilder};
    use crate::NodeId;

    #[test]
    fn pack_widen_roundtrip() {
        let row = vec![0, 1, 7, 65_534, INF];
        let mut packed = Vec::new();
        pack_u16_into(&row, &mut packed);
        assert_eq!(packed, vec![0, 1, 7, 65_534, INF_U16]);
        let mut widened = Vec::new();
        widen_u16_into(&packed, &mut widened);
        assert_eq!(widened, row);
    }

    #[test]
    fn fits_u16_rules() {
        let unweighted = graph_from_edges(8, &[(0, 1), (1, 2)]);
        assert!(fits_u16(&unweighted));
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(NodeId(0), NodeId(1), 5);
        assert!(!fits_u16(&b.build()), "weighted rows stay u32");
    }

    #[test]
    fn row_ref_widens_on_read() {
        let packed: Vec<u16> = vec![3, INF_U16];
        let r = RowRef::U16(&packed);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.get(0), 3);
        assert_eq!(r.get(1), INF);
        assert_eq!(r.to_u32_vec(), vec![3, INF]);
        let wide = vec![4, INF];
        let w = RowRef::U32(&wide);
        assert_eq!(w.get(1), INF);
        assert_eq!(w.to_u32_vec(), wide);
    }

    #[test]
    fn arena_allocates_reads_and_recycles() {
        let mut arena: RowArena<u16> = RowArena::new(3);
        let a = arena.alloc();
        let b = arena.alloc();
        arena.row_mut(a).copy_from_slice(&[1, 2, 3]);
        arena.row_mut(b).copy_from_slice(&[4, 5, 6]);
        assert_eq!(arena.row(a), &[1, 2, 3]);
        assert_eq!(arena.row(b), &[4, 5, 6]);
        assert_eq!(arena.live_rows(), 2);
        assert_eq!(arena.reused_rows(), 0);
        arena.release(a);
        assert_eq!(arena.live_rows(), 1);
        let c = arena.alloc();
        assert_eq!(c, a, "freed slot is recycled first");
        assert_eq!(arena.reused_rows(), 1);
        arena.row_mut(c).copy_from_slice(&[7, 8, 9]);
        assert_eq!(arena.row(b), &[4, 5, 6], "neighbors survive reuse");
        assert!(arena.slab_bytes() > 0);
        arena.clear();
        assert_eq!(arena.live_rows(), 0);
        assert_eq!(arena.slab_bytes(), 0);
    }

    #[test]
    fn arena_spans_multiple_slabs() {
        // Rows big enough that a slab holds few of them; force several slabs.
        let row_len = SLAB_TARGET_BYTES / std::mem::size_of::<u32>() / 2;
        let mut arena: RowArena<u32> = RowArena::new(row_len);
        let ids: Vec<RowId> = (0..5).map(|_| arena.alloc()).collect();
        for (i, &id) in ids.iter().enumerate() {
            arena.row_mut(id)[0] = i as u32;
            arena.row_mut(id)[row_len - 1] = 1000 + i as u32;
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(arena.row(id)[0], i as u32);
            assert_eq!(arena.row(id)[row_len - 1], 1000 + i as u32);
        }
        assert!(arena.slabs.len() >= 2, "expected multiple slabs");
    }

    #[test]
    fn zero_length_rows_are_harmless() {
        let mut arena: RowArena<u16> = RowArena::new(0);
        let id = arena.alloc();
        assert!(arena.row(id).is_empty());
    }
}
