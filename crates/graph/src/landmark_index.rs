//! Landmark-based point-to-point distance estimation.
//!
//! The classic technique the paper's related work builds on (Potamias et
//! al., Tretyakov et al.): precompute SSSP rows from a small set of
//! landmarks `L`; then for any pair `(u, v)` the triangle inequality gives
//!
//! * an **upper bound** `d(u, v) ≤ min_w d(u, w) + d(w, v)`, and
//! * a **lower bound** `d(u, v) ≥ max_w |d(u, w) − d(w, v)|`.
//!
//! Bounds are exact whenever some landmark lies on (or at the end of) a
//! shortest path. The converging-pairs library uses two of these indexes —
//! one per snapshot — to *certify* distance decreases without any extra
//! SSSP work (see `cp-core`'s `estimate` module).

use crate::bfs::{bfs_into, BfsWorkspace};
use crate::csr::GraphView;
use crate::dijkstra::dijkstra;
use crate::graph::NodeId;
use crate::INF;

/// Precomputed landmark distance rows over one graph.
///
/// ```
/// use cp_graph::builder::graph_from_edges;
/// use cp_graph::landmark_index::LandmarkIndex;
/// use cp_graph::NodeId;
///
/// // Path 0-1-2-3-4; landmark at the midpoint.
/// let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let idx = LandmarkIndex::build(&g, &[NodeId(2)]);
/// // True d(0, 4) = 4; the bounds bracket it.
/// assert_eq!(idx.lower_bound(NodeId(0), NodeId(4)), 0); // |2 - 2|
/// assert_eq!(idx.upper_bound(NodeId(0), NodeId(4)), 4); // 2 + 2, exact here
/// ```
#[derive(Clone, Debug)]
pub struct LandmarkIndex {
    landmarks: Vec<NodeId>,
    /// Row-major: `rows[i]` is the distance row of `landmarks[i]`.
    rows: Vec<Vec<u32>>,
}

impl LandmarkIndex {
    /// Builds the index by running one SSSP per landmark (BFS or Dijkstra
    /// depending on the graph's weighting). Duplicated landmarks are kept
    /// once.
    pub fn build<V: GraphView>(graph: &V, landmarks: &[NodeId]) -> Self {
        let mut seen = std::collections::HashSet::new();
        let mut uniq = Vec::with_capacity(landmarks.len());
        for &w in landmarks {
            if seen.insert(w) {
                uniq.push(w);
            }
        }
        // One reused workspace across the landmark sweep: the frontier and
        // bitset buffers are allocated once instead of per landmark.
        let mut ws = BfsWorkspace::new();
        let rows = uniq
            .iter()
            .map(|&w| {
                if graph.is_weighted() {
                    dijkstra(graph, w)
                } else {
                    let mut dist = vec![0u32; graph.num_nodes()];
                    bfs_into(graph, w, &mut dist, &mut ws);
                    dist
                }
            })
            .collect();
        LandmarkIndex {
            landmarks: uniq,
            rows,
        }
    }

    /// Wraps landmark rows that were already computed elsewhere (e.g. by
    /// the budget oracle), avoiding duplicate SSSP work.
    ///
    /// # Panics
    /// Panics if lengths mismatch.
    pub fn from_rows(landmarks: Vec<NodeId>, rows: Vec<Vec<u32>>) -> Self {
        assert_eq!(landmarks.len(), rows.len(), "one row per landmark");
        let n = rows.first().map(|r| r.len()).unwrap_or(0);
        assert!(rows.iter().all(|r| r.len() == n), "row length mismatch");
        LandmarkIndex { landmarks, rows }
    }

    /// The landmarks backing the index.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// Whether the index has no landmarks.
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// Upper bound on `d(u, v)`: the best two-hop route through a
    /// landmark; [`INF`] if no landmark reaches both endpoints.
    pub fn upper_bound(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = INF;
        for row in &self.rows {
            let (du, dv) = (row[u.index()], row[v.index()]);
            if du != INF && dv != INF {
                best = best.min(du.saturating_add(dv));
            }
        }
        best
    }

    /// Lower bound on `d(u, v)` via the reverse triangle inequality;
    /// 0 when no landmark gives information. Returns [`INF`] when some
    /// landmark proves the pair disconnected (one side reachable, the
    /// other not).
    pub fn lower_bound(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = 0;
        for row in &self.rows {
            let (du, dv) = (row[u.index()], row[v.index()]);
            match (du == INF, dv == INF) {
                (false, false) => best = best.max(du.abs_diff(dv)),
                (true, true) => {}
                // One endpoint in the landmark's component, one outside:
                // the pair cannot be connected.
                _ => return INF,
            }
        }
        best
    }

    /// Bulk form of [`Self::upper_bound`]: fills `out[v]` with the upper
    /// bound on `d(u, v)` for every node `v`, in `O(L · n)` — one pass per
    /// landmark row instead of `n` separate `O(L)` probes. `out` is
    /// resized to the row length and fully overwritten.
    pub fn accumulate_upper_bounds(&self, u: NodeId, out: &mut Vec<u32>) {
        let n = self.rows.first().map(|r| r.len()).unwrap_or(0);
        out.clear();
        out.resize(n, INF);
        for row in &self.rows {
            let du = row[u.index()];
            if du == INF {
                continue;
            }
            for (o, &dv) in out.iter_mut().zip(row.iter()) {
                if dv != INF {
                    *o = (*o).min(du.saturating_add(dv));
                }
            }
        }
        if n > 0 {
            out[u.index()] = 0;
        }
    }

    /// Bulk form of [`Self::lower_bound`]: fills `out[v]` with the lower
    /// bound on `d(u, v)` for every node `v` (with [`INF`] marking pairs
    /// certified disconnected), in `O(L · n)`. `out` is resized to the
    /// row length and fully overwritten.
    pub fn accumulate_lower_bounds(&self, u: NodeId, out: &mut Vec<u32>) {
        let n = self.rows.first().map(|r| r.len()).unwrap_or(0);
        out.clear();
        out.resize(n, 0);
        for row in &self.rows {
            let du = row[u.index()];
            for (o, &dv) in out.iter_mut().zip(row.iter()) {
                // One endpoint reachable from the landmark, one not:
                // certified disconnection. INF == u32::MAX, so once any
                // landmark certifies it the max-accumulation keeps it.
                *o = match (du == INF, dv == INF) {
                    (false, false) => (*o).max(du.abs_diff(dv)),
                    (true, true) => *o,
                    _ => INF,
                };
            }
        }
        if n > 0 {
            out[u.index()] = 0;
        }
    }

    /// Both bounds on `d(u, v)` in one pass over the landmark rows —
    /// `(lower, upper)`, with the same conventions as [`Self::lower_bound`]
    /// and [`Self::upper_bound`]. The point-query hot path calls this per
    /// lookup, so the rows are walked once instead of twice.
    pub fn bounds(&self, u: NodeId, v: NodeId) -> (u32, u32) {
        if u == v {
            return (0, 0);
        }
        let (mut lb, mut ub) = (0u32, INF);
        for row in &self.rows {
            let (du, dv) = (row[u.index()], row[v.index()]);
            match (du == INF, dv == INF) {
                (false, false) => {
                    lb = lb.max(du.abs_diff(dv));
                    ub = ub.min(du.saturating_add(dv));
                }
                (true, true) => {}
                // One endpoint in the landmark's component, one outside:
                // the pair is certified disconnected.
                _ => return (INF, INF),
            }
        }
        (lb, ub)
    }

    /// The midpoint estimate `(lower + upper) / 2`, a common scalar
    /// estimator; [`INF`] when the upper bound is infinite.
    pub fn estimate(&self, u: NodeId, v: NodeId) -> u32 {
        let ub = self.upper_bound(u, v);
        if ub == INF {
            return INF;
        }
        let lb = self.lower_bound(u, v);
        debug_assert!(lb <= ub);
        lb + (ub - lb) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::builder::graph_from_edges;
    use crate::graph::Graph;

    /// Path 0-1-2-3-4-5 plus chord (0,4).
    fn sample() -> Graph {
        graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 4)])
    }

    #[test]
    fn bounds_bracket_true_distance() {
        let g = sample();
        let idx = LandmarkIndex::build(&g, &[NodeId(0), NodeId(3)]);
        for u in 0..6u32 {
            let truth = bfs(&g, NodeId(u));
            for v in 0..6u32 {
                let (lb, ub) = (
                    idx.lower_bound(NodeId(u), NodeId(v)),
                    idx.upper_bound(NodeId(u), NodeId(v)),
                );
                assert!(lb <= truth[v as usize], "lb({u},{v})");
                assert!(ub >= truth[v as usize], "ub({u},{v})");
                let est = idx.estimate(NodeId(u), NodeId(v));
                assert!(lb <= est && est <= ub);
            }
        }
    }

    #[test]
    fn landmark_endpoint_is_exact() {
        let g = sample();
        let idx = LandmarkIndex::build(&g, &[NodeId(2)]);
        let truth = bfs(&g, NodeId(2));
        for v in 0..6u32 {
            assert_eq!(idx.upper_bound(NodeId(2), NodeId(v)), truth[v as usize]);
            assert_eq!(idx.lower_bound(NodeId(2), NodeId(v)), truth[v as usize]);
        }
    }

    #[test]
    fn disconnection_is_certified() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let idx = LandmarkIndex::build(&g, &[NodeId(0)]);
        assert_eq!(idx.lower_bound(NodeId(1), NodeId(2)), INF);
        assert_eq!(idx.upper_bound(NodeId(1), NodeId(2)), INF);
    }

    #[test]
    fn same_node_is_zero() {
        let g = sample();
        let idx = LandmarkIndex::build(&g, &[NodeId(5)]);
        assert_eq!(idx.lower_bound(NodeId(3), NodeId(3)), 0);
        assert_eq!(idx.upper_bound(NodeId(3), NodeId(3)), 0);
        assert_eq!(idx.estimate(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn duplicates_collapse_and_from_rows_roundtrips() {
        let g = sample();
        let idx = LandmarkIndex::build(&g, &[NodeId(1), NodeId(1), NodeId(4)]);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
        let rebuilt = LandmarkIndex::from_rows(
            idx.landmarks().to_vec(),
            vec![bfs(&g, NodeId(1)), bfs(&g, NodeId(4))],
        );
        assert_eq!(
            rebuilt.upper_bound(NodeId(0), NodeId(5)),
            idx.upper_bound(NodeId(0), NodeId(5))
        );
    }

    #[test]
    #[should_panic(expected = "one row per landmark")]
    fn from_rows_validates() {
        LandmarkIndex::from_rows(vec![NodeId(0)], vec![]);
    }

    #[test]
    fn bulk_bounds_match_scalar_probes() {
        // Connected sample plus a graph with a certified-disconnected
        // component, so the INF propagation paths are all exercised.
        let graphs = [sample(), graph_from_edges(6, &[(0, 1), (1, 2), (4, 5)])];
        for g in &graphs {
            let idx = LandmarkIndex::build(g, &[NodeId(0), NodeId(2)]);
            let (mut ubs, mut lbs) = (Vec::new(), Vec::new());
            for u in 0..6u32 {
                idx.accumulate_upper_bounds(NodeId(u), &mut ubs);
                idx.accumulate_lower_bounds(NodeId(u), &mut lbs);
                for v in 0..6u32 {
                    assert_eq!(
                        ubs[v as usize],
                        idx.upper_bound(NodeId(u), NodeId(v)),
                        "ub({u},{v})"
                    );
                    assert_eq!(
                        lbs[v as usize],
                        idx.lower_bound(NodeId(u), NodeId(v)),
                        "lb({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_bounds_on_empty_index() {
        let idx = LandmarkIndex::from_rows(vec![], vec![]);
        let (mut ubs, mut lbs) = (vec![1, 2, 3], vec![4, 5, 6]);
        idx.accumulate_upper_bounds(NodeId(0), &mut ubs);
        idx.accumulate_lower_bounds(NodeId(0), &mut lbs);
        assert!(ubs.is_empty());
        assert!(lbs.is_empty());
    }

    #[test]
    fn fused_bounds_match_separate_probes() {
        let graphs = [sample(), graph_from_edges(6, &[(0, 1), (1, 2), (4, 5)])];
        for g in &graphs {
            let idx = LandmarkIndex::build(g, &[NodeId(0), NodeId(2)]);
            for u in 0..6u32 {
                for v in 0..6u32 {
                    let (lb, ub) = idx.bounds(NodeId(u), NodeId(v));
                    assert_eq!(lb, idx.lower_bound(NodeId(u), NodeId(v)), "lb({u},{v})");
                    if lb != INF {
                        assert_eq!(ub, idx.upper_bound(NodeId(u), NodeId(v)), "ub({u},{v})");
                    }
                }
            }
        }
    }

    #[test]
    fn more_landmarks_tighten_bounds() {
        let g = sample();
        let few = LandmarkIndex::build(&g, &[NodeId(0)]);
        let many = LandmarkIndex::build(&g, &[NodeId(0), NodeId(2), NodeId(5)]);
        for u in 0..6u32 {
            for v in 0..6u32 {
                assert!(
                    many.upper_bound(NodeId(u), NodeId(v)) <= few.upper_bound(NodeId(u), NodeId(v))
                );
                assert!(
                    many.lower_bound(NodeId(u), NodeId(v)) >= few.lower_bound(NodeId(u), NodeId(v))
                );
            }
        }
    }
}
