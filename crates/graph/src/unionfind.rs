//! Disjoint-set (union-find) with path halving and union by size.

/// A classic union-find structure over dense indices `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x` (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.set_size(1), 3);
        assert_eq!(uf.set_size(4), 1);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
    }

    #[test]
    fn chain_compresses() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        for i in 0..100 {
            assert_eq!(uf.find(i), uf.find(0));
        }
        assert_eq!(uf.set_size(50), 100);
    }
}
