//! Snapshot-delta SSSP repair for growing graphs.
//!
//! The paper's evolution model (Problem 1) only ever *inserts* nodes and
//! edges: `G_t1 ⊆ G_t2`, so distances can only shrink. That makes the
//! `t1` distance row of a source a valid **upper bound** on its `t2` row,
//! and any `t2` shortest path that improves on it must cross at least one
//! edge of `E_t2 \ E_t1`. Repairing the row therefore never needs a full
//! graph sweep: seed a monotone frontier with the endpoints whose tentative
//! distance improves through an inserted edge, then relax outward in
//! nondecreasing distance order — exactly the insertion half of
//! Ramalingam–Reps dynamic shortest paths. Only the *shrinking region* is
//! traversed; nodes whose distance is unchanged are never touched.
//!
//! Two kernels share this logic:
//!
//! * [`bfs_repair_into`] — unit weights. The frontier is a Dial bucket
//!   queue indexed by tentative distance (levels are small integers), so
//!   pops are O(1) and the whole repair is `O(|region| + |Δ|)`.
//! * [`dijkstra_repair_into`] — weighted graphs, binary-heap frontier with
//!   the same stale-entry skip as [`crate::dijkstra::dijkstra_into`].
//!
//! Both produce rows **bit-identical** to a fresh BFS/Dijkstra on `G_t2`
//! (distance rows are uniquely determined by the graph), which is what
//! lets the budget oracle in `cp-core` swap repairs in without disturbing
//! its determinism contract. The precondition — `G_t1 ⊆ G_t2` with equal
//! weights on shared edges — is checked once per snapshot pair by
//! [`snapshot_delta`].

use crate::csr::GraphView;
use crate::graph::{Graph, NodeId};
use crate::INF;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An edge of `E_t2 \ E_t1` with its weight in `G_t2` (1 when unweighted).
pub type InsertedEdge = (NodeId, NodeId, u32);

/// The edge delta between two snapshots, plus whether the pair satisfies
/// the growth-only precondition that makes row repair exact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// `true` iff every edge of `G_t1` exists in `G_t2` with the same
    /// weight (and the node universes match). Repair is only valid — and
    /// `inserted` only populated — when this holds.
    pub growth_only: bool,
    /// The edges of `E_t2 \ E_t1`, normalized `u < v`, ascending, with
    /// their `G_t2` weights. Empty when `growth_only` is `false`.
    pub inserted: Vec<InsertedEdge>,
}

impl SnapshotDelta {
    /// Whether repair can be applied to this snapshot pair.
    pub fn repairable(&self) -> bool {
        self.growth_only
    }
}

/// Computes the edge delta `E_t2 \ E_t1` and verifies the growth-only
/// precondition (`G_t1 ⊆ G_t2`, shared edges keep their weight, same node
/// universe). Cost is one adjacency-sorted membership probe per edge of
/// either snapshot — about the price of a single BFS.
pub fn snapshot_delta(g1: &Graph, g2: &Graph) -> SnapshotDelta {
    if g1.num_nodes() != g2.num_nodes() {
        return SnapshotDelta::default();
    }
    // Containment: every t1 edge must survive, with its weight.
    for u in g1.nodes() {
        for (v, e1) in g1.neighbors_with_edge_ids(u) {
            if u >= v {
                continue;
            }
            match g2.edge_id(u, v) {
                Some(e2) if g2.edge_weight(e2) == g1.edge_weight(e1) => {}
                _ => return SnapshotDelta::default(),
            }
        }
    }
    let mut inserted = Vec::with_capacity(g2.num_edges() - g1.num_edges());
    for u in g2.nodes() {
        for (v, e2) in g2.neighbors_with_edge_ids(u) {
            if u < v && !g1.has_edge(u, v) {
                inserted.push((u, v, g2.edge_weight(e2)));
            }
        }
    }
    SnapshotDelta {
        growth_only: true,
        inserted,
    }
}

/// Reusable scratch space for the repair kernels: the Dial buckets of the
/// unit-weight path and the heap of the weighted path. Buffers grow on
/// first use and are recycled across rows.
#[derive(Default)]
pub struct RepairWorkspace {
    /// `buckets[d]` holds nodes with tentative distance `d` (unit weights).
    buckets: Vec<Vec<u32>>,
    /// Weighted frontier, with stale-entry skip on pop.
    heap: BinaryHeap<Reverse<(u32, NodeId)>>,
}

impl RepairWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Repairs a unit-weight `t1` distance row into the `t2` row of the same
/// source, given the inserted edges `E_t2 \ E_t1`. Writes the exact `t2`
/// row into `dist` (resized and overwritten) and returns the number of
/// nodes settled — the size of the shrinking region, the work a full BFS
/// would have spent sweeping everything else.
///
/// Preconditions (checked by [`snapshot_delta`], debug-asserted here):
/// `t1_row.len() == g2.num_nodes()`, `g2` unweighted, every inserted edge
/// present in `g2`, and `t1_row` an upper bound on `t2` distances (true
/// whenever `G_t1 ⊆ G_t2`). An empty delta returns a plain copy.
pub fn bfs_repair_into<V: GraphView>(
    g2: &V,
    t1_row: &[u32],
    inserted: &[InsertedEdge],
    dist: &mut Vec<u32>,
    ws: &mut RepairWorkspace,
) -> usize {
    debug_assert_eq!(t1_row.len(), g2.num_nodes());
    debug_assert!(!g2.is_weighted());
    dist.clear();
    dist.extend_from_slice(t1_row);
    let RepairWorkspace { buckets, .. } = ws;

    let mut hi = 0usize;
    let mut lo = usize::MAX;
    for &(a, b, w) in inserted {
        debug_assert_eq!(w, 1, "unit-weight repair fed a weighted edge");
        debug_assert!(g2.any_neighbor(a, |v| v == b));
        for (x, y) in [(a, b), (b, a)] {
            let dx = dist[x.index()];
            if dx == INF {
                continue;
            }
            let nd = dx + 1;
            if nd < dist[y.index()] {
                dist[y.index()] = nd;
                let d = nd as usize;
                if buckets.len() <= d {
                    buckets.resize_with(d + 1, Vec::new);
                }
                buckets[d].push(y.0);
                lo = lo.min(d);
                hi = hi.max(d);
            }
        }
    }
    if lo == usize::MAX {
        return 0;
    }

    let mut settled = 0usize;
    let mut d = lo;
    // Unit weights: settling bucket `d` only ever pushes into `d + 1`, so a
    // single ascending pass is a Dijkstra-correct processing order.
    while d <= hi {
        let mut bucket = std::mem::take(&mut buckets[d]);
        for &v in &bucket {
            let v = NodeId(v);
            if dist[v.index()] != d as u32 {
                continue; // stale: improved again after this push
            }
            settled += 1;
            let nd = d as u32 + 1;
            g2.for_each_neighbor(v, |u| {
                if nd < dist[u.index()] {
                    dist[u.index()] = nd;
                    let nd = nd as usize;
                    if buckets.len() <= nd {
                        buckets.resize_with(nd + 1, Vec::new);
                    }
                    buckets[nd].push(u.0);
                    hi = hi.max(nd);
                }
            });
        }
        bucket.clear();
        buckets[d] = bucket; // keep the allocation for the next row
        d += 1;
    }
    settled
}

/// Allocating convenience wrapper around [`bfs_repair_into`].
pub fn bfs_repair<V: GraphView>(g2: &V, t1_row: &[u32], inserted: &[InsertedEdge]) -> Vec<u32> {
    let mut dist = Vec::new();
    bfs_repair_into(g2, t1_row, inserted, &mut dist, &mut RepairWorkspace::new());
    dist
}

/// Weighted counterpart of [`bfs_repair_into`]: repairs a `t1` Dijkstra
/// row into the exact `t2` row, seeding a heap with the improving endpoints
/// of the inserted edges and relaxing only the shrinking region. Returns
/// the number of nodes settled.
pub fn dijkstra_repair_into<V: GraphView>(
    g2: &V,
    t1_row: &[u32],
    inserted: &[InsertedEdge],
    dist: &mut Vec<u32>,
    ws: &mut RepairWorkspace,
) -> usize {
    debug_assert_eq!(t1_row.len(), g2.num_nodes());
    dist.clear();
    dist.extend_from_slice(t1_row);
    let RepairWorkspace { heap, .. } = ws;
    heap.clear();

    for &(a, b, w) in inserted {
        debug_assert!(g2.any_neighbor(a, |v| v == b));
        for (x, y) in [(a, b), (b, a)] {
            let dx = dist[x.index()];
            if dx == INF {
                continue;
            }
            let nd = dx.saturating_add(w).min(INF - 1);
            if nd < dist[y.index()] {
                dist[y.index()] = nd;
                heap.push(Reverse((nd, y)));
            }
        }
    }

    let mut settled = 0usize;
    while let Some(Reverse((dv, v))) = heap.pop() {
        if dv > dist[v.index()] {
            continue; // stale entry
        }
        settled += 1;
        g2.for_each_neighbor_weighted(v, |u, w| {
            let nd = dv.saturating_add(w).min(INF - 1);
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(Reverse((nd, u)));
            }
        });
    }
    settled
}

/// Allocating convenience wrapper around [`dijkstra_repair_into`].
pub fn dijkstra_repair<V: GraphView>(
    g2: &V,
    t1_row: &[u32],
    inserted: &[InsertedEdge],
) -> Vec<u32> {
    let mut dist = Vec::new();
    dijkstra_repair_into(g2, t1_row, inserted, &mut dist, &mut RepairWorkspace::new());
    dist
}

/// Dispatching repair: unit-weight bucket repair when `g2` is unweighted,
/// heap repair otherwise. `delta` must be [`SnapshotDelta::repairable`].
/// Returns the settled-node count.
pub fn delta_repair_into<V: GraphView>(
    g2: &V,
    t1_row: &[u32],
    delta: &SnapshotDelta,
    dist: &mut Vec<u32>,
    ws: &mut RepairWorkspace,
) -> usize {
    assert!(delta.growth_only, "repair requires a growth-only delta");
    if g2.is_weighted() {
        dijkstra_repair_into(g2, t1_row, &delta.inserted, dist, ws)
    } else {
        bfs_repair_into(g2, t1_row, &delta.inserted, dist, ws)
    }
}

/// Allocating convenience wrapper around [`delta_repair_into`].
pub fn delta_repair<V: GraphView>(g2: &V, t1_row: &[u32], delta: &SnapshotDelta) -> Vec<u32> {
    let mut dist = Vec::new();
    delta_repair_into(g2, t1_row, delta, &mut dist, &mut RepairWorkspace::new());
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::builder::{graph_from_edges, GraphBuilder};
    use crate::dijkstra::dijkstra;

    fn repaired_all_sources(g1: &Graph, g2: &Graph) {
        let delta = snapshot_delta(g1, g2);
        assert!(delta.growth_only);
        let mut ws = RepairWorkspace::new();
        let mut dist = Vec::new();
        for s in g1.nodes() {
            let t1 = bfs(g1, s);
            bfs_repair_into(g2, &t1, &delta.inserted, &mut dist, &mut ws);
            assert_eq!(dist, bfs(g2, s), "source {s}");
        }
    }

    #[test]
    fn chord_on_a_path() {
        let base: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let g1 = graph_from_edges(8, &base);
        let mut all = base;
        all.push((0, 7));
        all.push((2, 6));
        let g2 = graph_from_edges(8, &all);
        repaired_all_sources(&g1, &g2);
    }

    #[test]
    fn empty_delta_is_a_copy() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let delta = snapshot_delta(&g, &g);
        assert!(delta.growth_only);
        assert!(delta.inserted.is_empty());
        let t1 = bfs(&g, NodeId(0));
        assert_eq!(bfs_repair(&g, &t1, &delta.inserted), t1);
    }

    #[test]
    fn newly_connected_component() {
        // 0-1-2 and 3-4 are separate in g1; g2 bridges them and also wires
        // up the isolated node 5.
        let g1 = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let g2 = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4), (2, 3), (4, 5)]);
        repaired_all_sources(&g1, &g2);
    }

    #[test]
    fn settled_count_is_the_shrinking_region() {
        // Path 0..=7 plus chord (0,7): from source 0 exactly nodes 7, 6, 5
        // improve (d 7→1, 6→2, 5→3); 4 stays at 4.
        let base: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let g1 = graph_from_edges(8, &base);
        let mut all = base;
        all.push((0, 7));
        let g2 = graph_from_edges(8, &all);
        let delta = snapshot_delta(&g1, &g2);
        let t1 = bfs(&g1, NodeId(0));
        let mut dist = Vec::new();
        let settled = bfs_repair_into(
            &g2,
            &t1,
            &delta.inserted,
            &mut dist,
            &mut RepairWorkspace::new(),
        );
        assert_eq!(dist, bfs(&g2, NodeId(0)));
        assert_eq!(settled, 3);
    }

    #[test]
    fn weighted_repair_matches_fresh_dijkstra() {
        let mut b1 = GraphBuilder::new(5);
        b1.add_weighted_edge(NodeId(0), NodeId(1), 4);
        b1.add_weighted_edge(NodeId(1), NodeId(2), 3);
        b1.add_weighted_edge(NodeId(2), NodeId(3), 5);
        let g1 = b1.build();
        let mut b2 = GraphBuilder::new(5);
        b2.add_weighted_edge(NodeId(0), NodeId(1), 4);
        b2.add_weighted_edge(NodeId(1), NodeId(2), 3);
        b2.add_weighted_edge(NodeId(2), NodeId(3), 5);
        b2.add_weighted_edge(NodeId(0), NodeId(3), 2); // shortcut
        b2.add_weighted_edge(NodeId(3), NodeId(4), 1); // connects node 4
        let g2 = b2.build();
        let delta = snapshot_delta(&g1, &g2);
        assert!(delta.growth_only);
        assert_eq!(delta.inserted.len(), 2);
        let mut ws = RepairWorkspace::new();
        let mut dist = Vec::new();
        for s in g1.nodes() {
            let t1 = dijkstra(&g1, s);
            dijkstra_repair_into(&g2, &t1, &delta.inserted, &mut dist, &mut ws);
            assert_eq!(dist, dijkstra(&g2, s), "source {s}");
        }
    }

    #[test]
    fn delta_rejects_weight_changes_and_deletions() {
        let g1 = graph_from_edges(4, &[(0, 1), (1, 2)]);
        let g2 = graph_from_edges(4, &[(0, 1), (2, 3)]); // (1,2) deleted
        assert!(!snapshot_delta(&g1, &g2).growth_only);

        let mut b1 = GraphBuilder::new(3);
        b1.add_weighted_edge(NodeId(0), NodeId(1), 2);
        let mut b2 = GraphBuilder::new(3);
        b2.add_weighted_edge(NodeId(0), NodeId(1), 7); // weight changed
        assert!(!snapshot_delta(&b1.build(), &b2.build()).growth_only);

        let g3 = graph_from_edges(5, &[(0, 1)]); // universe mismatch
        assert!(!snapshot_delta(&g1, &g3).growth_only);
    }

    #[test]
    fn delta_lists_inserted_edges_normalized() {
        let g1 = graph_from_edges(4, &[(0, 1)]);
        let g2 = graph_from_edges(4, &[(0, 1), (3, 2), (1, 3)]);
        let delta = snapshot_delta(&g1, &g2);
        assert!(delta.growth_only);
        assert_eq!(
            delta.inserted,
            vec![(NodeId(1), NodeId(3), 1), (NodeId(2), NodeId(3), 1)]
        );
    }

    #[test]
    fn workspace_reuse_across_rows() {
        let g1 = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let g2 = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let delta = snapshot_delta(&g1, &g2);
        let mut ws = RepairWorkspace::new();
        let mut dist = Vec::new();
        for s in [NodeId(0), NodeId(3), NodeId(5), NodeId(0)] {
            let t1 = bfs(&g1, s);
            bfs_repair_into(&g2, &t1, &delta.inserted, &mut dist, &mut ws);
            assert_eq!(dist, bfs(&g2, s), "source {s}");
        }
    }
}
