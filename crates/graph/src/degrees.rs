//! Degree-based statistics over one or two snapshots.
//!
//! These feed the centrality-based selectors (Degree / DegDiff / DegRel),
//! the classifier features, and the dataset characterization of Table 2.

use crate::graph::{Graph, NodeId};

/// Degree vector of a graph.
pub fn degree_vector(graph: &Graph) -> Vec<u32> {
    graph.nodes().map(|u| graph.degree(u) as u32).collect()
}

/// Per-node degree difference `deg_t2(u) − deg_t1(u)`.
///
/// For growing graphs this is non-negative; the function saturates at zero
/// to stay total on arbitrary snapshot pairs.
pub fn degree_diff(g1: &Graph, g2: &Graph) -> Vec<u32> {
    assert_eq!(g1.num_nodes(), g2.num_nodes());
    g1.nodes()
        .map(|u| (g2.degree(u) as u32).saturating_sub(g1.degree(u) as u32))
        .collect()
}

/// Per-node relative degree difference `(deg_t2 − deg_t1) / deg_t1`.
///
/// Nodes with `deg_t1 = 0` (new arrivals) use a denominator of 1, matching
/// the intuition that every new edge of a fresh node is maximally
/// significant; the paper does not define this corner, and these nodes have
/// no pairs in `G_t1` anyway, so the choice cannot affect coverage of valid
/// pairs — only the ranking of useless candidates.
pub fn degree_rel_diff(g1: &Graph, g2: &Graph) -> Vec<f64> {
    assert_eq!(g1.num_nodes(), g2.num_nodes());
    g1.nodes()
        .map(|u| {
            let d1 = g1.degree(u) as f64;
            let d2 = g2.degree(u) as f64;
            (d2 - d1).max(0.0) / d1.max(1.0)
        })
        .collect()
}

/// Returns the indices of the `m` largest entries of `scores`, descending,
/// with ties broken by smaller node id (deterministic). `m` is clipped to
/// the number of nodes.
pub fn top_m_by_score_f64(scores: &[f64], m: usize) -> Vec<NodeId> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    // Total order: NaN-free inputs expected (scores come from our own
    // arithmetic); sort_unstable_by with partial_cmp would panic on NaN,
    // total_cmp keeps it robust.
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    idx.truncate(m.min(scores.len()));
    idx.into_iter().map(NodeId).collect()
}

/// Integer-score variant of [`top_m_by_score_f64`].
pub fn top_m_by_score_u32(scores: &[u32], m: usize) -> Vec<NodeId> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_by(|&a, &b| scores[b as usize].cmp(&scores[a as usize]).then(a.cmp(&b)));
    idx.truncate(m.min(scores.len()));
    idx.into_iter().map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn degree_vectors() {
        let g1 = graph_from_edges(4, &[(0, 1)]);
        let g2 = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3), (2, 3)]);
        assert_eq!(degree_vector(&g1), vec![1, 1, 0, 0]);
        assert_eq!(degree_diff(&g1, &g2), vec![2, 0, 2, 2]);
        let rel = degree_rel_diff(&g1, &g2);
        assert_eq!(rel[0], 2.0); // 1 -> 3
        assert_eq!(rel[1], 0.0);
        assert_eq!(rel[2], 2.0); // 0 -> 2, denominator clamped to 1
    }

    #[test]
    fn top_m_selection_and_ties() {
        let scores = [3u32, 5, 5, 1];
        assert_eq!(
            top_m_by_score_u32(&scores, 3),
            vec![NodeId(1), NodeId(2), NodeId(0)]
        );
        // m larger than n clips.
        assert_eq!(top_m_by_score_u32(&scores, 10).len(), 4);
        let f = [0.5f64, 2.5, 2.5, -1.0];
        assert_eq!(top_m_by_score_f64(&f, 2), vec![NodeId(1), NodeId(2)]);
    }
}
