//! Incremental construction of CSR snapshots.

use crate::graph::{Graph, NodeId};

/// Builds a [`Graph`] from an edge list.
///
/// * Self-loops are dropped.
/// * Parallel edges are de-duplicated (first occurrence wins, including its
///   weight) — the temporal streams used in the experiments legitimately
///   re-announce edges (e.g. two actors appearing in several movies), and a
///   snapshot is the *set* of edges seen so far.
/// * Mixing [`add_edge`](Self::add_edge) and
///   [`add_weighted_edge`](Self::add_weighted_edge) is allowed; plain edges
///   get weight 1 and the resulting graph is weighted if any call supplied a
///   weight.
pub struct GraphBuilder {
    num_nodes: usize,
    /// (min endpoint, max endpoint, weight)
    edges: Vec<(NodeId, NodeId, u32)>,
    weighted: bool,
}

impl GraphBuilder {
    /// Creates a builder over a universe of `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            weighted: false,
        }
    }

    /// Creates a builder and reserves room for `edges` edges.
    pub fn with_capacity(num_nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::with_capacity(edges),
            weighted: false,
        }
    }

    /// Number of nodes in the universe.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Adds the undirected unit-weight edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Panics
    /// Panics if an endpoint is outside the node universe.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_weighted_raw(u, v, 1);
    }

    /// Adds the undirected edge `{u, v}` with a positive weight.
    ///
    /// # Panics
    /// Panics if `weight == 0` or an endpoint is out of range.
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, weight: u32) {
        assert!(weight > 0, "edge weights must be positive");
        self.weighted = true;
        self.add_weighted_raw(u, v, weight);
    }

    fn add_weighted_raw(&mut self, u: NodeId, v: NodeId, weight: u32) {
        assert!(
            u.index() < self.num_nodes && v.index() < self.num_nodes,
            "edge ({u:?}, {v:?}) outside node universe of size {}",
            self.num_nodes
        );
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, weight));
    }

    /// Finalizes the CSR snapshot.
    pub fn build(mut self) -> Graph {
        // Sort + dedup normalized endpoint pairs; stable sort keeps the first
        // occurrence's weight after dedup_by.
        self.edges.sort_by_key(|x| (x.0, x.1));
        self.edges
            .dedup_by(|next, first| (next.0, next.1) == (first.0, first.1));

        let n = self.num_nodes;
        let m = self.edges.len();
        let mut degrees = vec![0usize; n];
        for &(u, v, _) in &self.edges {
            degrees[u.index()] += 1;
            degrees[v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId(0); 2 * m];
        let mut arc_edge = vec![0u32; 2 * m];
        let mut weights = if self.weighted {
            Some(Vec::with_capacity(m))
        } else {
            None
        };
        for (e, &(u, v, w)) in self.edges.iter().enumerate() {
            let e32 = u32::try_from(e).expect("edge count exceeds u32");
            targets[cursor[u.index()]] = v;
            arc_edge[cursor[u.index()]] = e32;
            cursor[u.index()] += 1;
            targets[cursor[v.index()]] = u;
            arc_edge[cursor[v.index()]] = e32;
            cursor[v.index()] += 1;
            if let Some(ws) = &mut weights {
                ws.push(w);
            }
        }
        // Edges were inserted in (u, v)-sorted order, and within each node's
        // slot the arcs therefore arrive with non-decreasing targets — except
        // arcs added in the `v` role, which interleave. A per-node sort fixes
        // this; adjacency slices are small so the simple approach is fine.
        let mut pairs: Vec<(NodeId, u32)> = Vec::new();
        for u in 0..n {
            let range = offsets[u]..offsets[u + 1];
            pairs.clear();
            pairs.extend(
                targets[range.clone()]
                    .iter()
                    .copied()
                    .zip(arc_edge[range].iter().copied()),
            );
            pairs.sort_unstable_by_key(|&(t, _)| t);
            for (i, &(t, e)) in pairs.iter().enumerate() {
                targets[offsets[u] + i] = t;
                arc_edge[offsets[u] + i] = e;
            }
        }
        let g = Graph {
            offsets,
            targets,
            arc_edge,
            weights,
            num_edges: m,
        };
        debug_assert_eq!(g.check_invariants(), Ok(()));
        g
    }
}

/// Convenience: builds an unweighted graph from `(u, v)` index pairs.
pub fn graph_from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::with_capacity(num_nodes, edges.len());
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(0)); // duplicate, reversed
        b.add_edge(NodeId(2), NodeId(2)); // self-loop, dropped
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn weighted_keeps_first_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(NodeId(0), NodeId(1), 7);
        b.add_weighted_edge(NodeId(1), NodeId(0), 9); // duplicate, ignored
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(g.edge_id(NodeId(0), NodeId(1)).unwrap()), 7);
    }

    #[test]
    #[should_panic(expected = "outside node universe")]
    fn out_of_range_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(NodeId(0), NodeId(1), 0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn helper_builds_graph() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId(0)), 2);
    }
}
