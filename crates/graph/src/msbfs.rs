//! Bit-parallel multi-source BFS (MS-BFS).
//!
//! The budget oracle's batched prefetch fixes its admitted source set
//! *before* any traversal runs, which is exactly the shape that lets many
//! sources share one sweep of the graph (Then et al., "The More the
//! Merrier: Efficient Multi-Source BFS Processing", VLDB 2014). Each node
//! carries one `u64` word per state — `seen` (discovered by source *b*) and
//! `visit` (in source *b*'s current frontier) — so one adjacency scan
//! advances up to [`WAVE_WIDTH`] BFS traversals at once:
//!
//! ```text
//! new = visit[u] & !seen[v]   // sources reaching v through u for the first time
//! ```
//!
//! All sources advance level-synchronously, so each bit is set exactly once
//! and the written distance is the true BFS level — the rows are
//! bit-identical to [`crate::bfs::bfs`] run per source, regardless of
//! traversal order within a level. That property is what lets the oracle
//! swap this kernel in without disturbing the paper's determinism contract
//! (one wave still *charges* one SSSP per source; see `cp-core`).

use crate::bfs::TraversalWork;
use crate::csr::GraphView;
use crate::graph::NodeId;
use crate::INF;

/// Maximum sources per wave: one bit per source in a `u64` word.
pub const WAVE_WIDTH: usize = 64;

/// Reusable scratch space for [`msbfs_into`]: three words per node plus the
/// frontier queues. Buffers grow on first use and are recycled across waves.
#[derive(Default)]
pub struct MsBfsWorkspace {
    /// `seen[v]` bit *b* set ⇔ source *b* has discovered `v`.
    seen: Vec<u64>,
    /// `visit[v]` bit *b* set ⇔ `v` is in source *b*'s current frontier.
    visit: Vec<u64>,
    /// Next-level visit words being accumulated.
    next: Vec<u64>,
    /// Nodes with a non-zero `visit` word this level.
    frontier: Vec<u32>,
    /// Nodes with a non-zero `next` word (next level's frontier).
    next_frontier: Vec<u32>,
}

impl MsBfsWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Advances up to [`WAVE_WIDTH`] BFS traversals in one graph sweep, writing
/// `rows[b]` = the distance row of `sources[b]`.
///
/// Each row is resized to `graph.num_nodes()` and fully overwritten;
/// unreachable nodes get [`INF`]. Duplicate and isolated sources are fine
/// (duplicates simply share every discovery).
///
/// # Panics
/// Panics if `sources.len() > WAVE_WIDTH` or `rows.len() != sources.len()`.
pub fn msbfs_into<V: GraphView>(
    graph: &V,
    sources: &[NodeId],
    rows: &mut [Vec<u32>],
    ws: &mut MsBfsWorkspace,
) {
    msbfs_limited_into(graph, sources, rows, ws, INF, &mut TraversalWork::new());
}

/// Depth-limited, work-counted variant of [`msbfs_into`].
///
/// The whole wave stops before any level `> limit` would be produced:
/// every `(source, node)` pair within `limit` hops gets its exact BFS
/// level, everything beyond stays [`INF`]. With `limit == INF` the rows
/// are identical to [`msbfs_into`]. Returns a bitmask with bit *b* set
/// iff source *b* still had a live frontier at the cutoff, i.e. its row
/// was actually truncated. `work` counts settled `(source, node)` pairs
/// and adjacency entries scanned (one per edge per sweep — the shared
/// sweep is exactly what makes a wave cheaper than per-source BFS).
pub fn msbfs_limited_into<V: GraphView>(
    graph: &V,
    sources: &[NodeId],
    rows: &mut [Vec<u32>],
    ws: &mut MsBfsWorkspace,
    limit: u32,
    work: &mut TraversalWork,
) -> u64 {
    assert!(
        sources.len() <= WAVE_WIDTH,
        "wave of {} sources exceeds WAVE_WIDTH={WAVE_WIDTH}",
        sources.len()
    );
    assert_eq!(sources.len(), rows.len(), "one row per source");
    let n = graph.num_nodes();
    for row in rows.iter_mut() {
        row.clear();
        row.resize(n, INF);
    }
    // Split the workspace into disjoint field borrows so the adjacency
    // closure can mutate the wave state while the frontier is iterated.
    let MsBfsWorkspace {
        seen,
        visit,
        next,
        frontier,
        next_frontier,
    } = ws;
    seen.clear();
    seen.resize(n, 0);
    visit.clear();
    visit.resize(n, 0);
    next.clear();
    next.resize(n, 0);
    frontier.clear();
    next_frontier.clear();

    for (b, &s) in sources.iter().enumerate() {
        rows[b][s.index()] = 0;
        if visit[s.index()] == 0 {
            frontier.push(s.0);
        }
        seen[s.index()] |= 1u64 << b;
        visit[s.index()] |= 1u64 << b;
    }
    work.settled += sources.len() as u64;

    let mut level: u32 = 0;
    while !frontier.is_empty() {
        if level >= limit {
            // Sources with a bit still live in the frontier's visit words
            // were cut short; the rest had already drained.
            let mut truncated = 0u64;
            for &uf in frontier.iter() {
                truncated |= visit[uf as usize];
            }
            return truncated;
        }
        level += 1;
        for &uf in frontier.iter() {
            let u = uf as usize;
            let vis = visit[u];
            graph.for_each_neighbor(NodeId::new(u), |v| {
                let v = v.index();
                work.relaxed += 1;
                let new = vis & !seen[v];
                if new != 0 {
                    if next[v] == 0 {
                        next_frontier.push(v as u32);
                    }
                    next[v] |= new;
                    seen[v] |= new;
                    work.settled += u64::from(new.count_ones());
                    let mut bits = new;
                    while bits != 0 {
                        rows[bits.trailing_zeros() as usize][v] = level;
                        bits &= bits - 1;
                    }
                }
            });
        }
        // Roll the wave forward: retire this level's visit words, promote
        // the accumulated next words. A node can sit in both frontiers
        // (different sources reach it at different levels), so clear first.
        for &uf in frontier.iter() {
            visit[uf as usize] = 0;
        }
        for &vf in next_frontier.iter() {
            let v = vf as usize;
            visit[v] = next[v];
            next[v] = 0;
        }
        std::mem::swap(frontier, next_frontier);
        next_frontier.clear();
    }
    0
}

/// Allocating convenience wrapper: runs [`msbfs_into`] over `sources` in
/// chunks of [`WAVE_WIDTH`], returning one distance row per source (any
/// number of sources).
pub fn msbfs<V: GraphView>(graph: &V, sources: &[NodeId]) -> Vec<Vec<u32>> {
    let mut ws = MsBfsWorkspace::new();
    let mut rows: Vec<Vec<u32>> = (0..sources.len()).map(|_| Vec::new()).collect();
    for (chunk, out) in sources.chunks(WAVE_WIDTH).zip(rows.chunks_mut(WAVE_WIDTH)) {
        msbfs_into(graph, chunk, out, &mut ws);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::builder::graph_from_edges;
    use crate::graph::Graph;

    fn sample() -> Graph {
        graph_from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (6, 7)])
    }

    #[test]
    fn matches_per_source_bfs() {
        let g = sample();
        let sources: Vec<NodeId> = g.nodes().collect();
        let rows = msbfs(&g, &sources);
        for (b, &s) in sources.iter().enumerate() {
            assert_eq!(rows[b], bfs(&g, s), "source {s}");
        }
    }

    #[test]
    fn duplicate_and_isolated_sources() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2)]); // 3, 4 isolated
        let sources = [NodeId(0), NodeId(3), NodeId(0), NodeId(4)];
        let rows = msbfs(&g, &sources);
        assert_eq!(rows[0], rows[2]);
        assert_eq!(rows[0], bfs(&g, NodeId(0)));
        assert_eq!(rows[1], bfs(&g, NodeId(3)));
        assert_eq!(rows[3], bfs(&g, NodeId(4)));
    }

    #[test]
    fn workspace_reuse_across_waves() {
        let g = sample();
        let mut ws = MsBfsWorkspace::new();
        let mut rows = vec![Vec::new(), Vec::new()];
        msbfs_into(&g, &[NodeId(0), NodeId(6)], &mut rows, &mut ws);
        assert_eq!(rows[0], bfs(&g, NodeId(0)));
        assert_eq!(rows[1], bfs(&g, NodeId(6)));
        msbfs_into(&g, &[NodeId(5), NodeId(7)], &mut rows, &mut ws);
        assert_eq!(rows[0], bfs(&g, NodeId(5)));
        assert_eq!(rows[1], bfs(&g, NodeId(7)));
    }

    #[test]
    fn empty_wave_is_noop() {
        let g = sample();
        assert!(msbfs(&g, &[]).is_empty());
    }

    #[test]
    fn chunking_beyond_wave_width() {
        // 70 sources on a ring: two waves, all rows still exact.
        let n = 70u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = graph_from_edges(n as usize, &edges);
        let sources: Vec<NodeId> = (0..n).map(NodeId).collect();
        let rows = msbfs(&g, &sources);
        assert_eq!(rows.len(), 70);
        for (b, &s) in sources.iter().enumerate() {
            assert_eq!(rows[b], bfs(&g, s), "source {s}");
        }
    }

    #[test]
    fn limited_with_inf_matches_unlimited() {
        let g = sample();
        let sources: Vec<NodeId> = g.nodes().collect();
        let mut ws = MsBfsWorkspace::new();
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); sources.len()];
        let mut work = TraversalWork::new();
        let truncated = msbfs_limited_into(&g, &sources, &mut rows, &mut ws, INF, &mut work);
        assert_eq!(truncated, 0);
        for (b, &s) in sources.iter().enumerate() {
            assert_eq!(rows[b], bfs(&g, s), "source {s}");
        }
        assert!(work.settled > 0 && work.relaxed > 0);
    }

    #[test]
    fn limited_truncates_per_source() {
        // Path 0-1-2-3-4-5: from 0 the wave needs 5 levels, from 4 only 2
        // (to the left it needs 4). Limit 2 truncates source 0 but the
        // distances within the limit stay exact for every source.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let sources = [NodeId(0), NodeId(2)];
        let mut ws = MsBfsWorkspace::new();
        let mut rows = vec![Vec::new(), Vec::new()];
        let mut work = TraversalWork::new();
        let truncated = msbfs_limited_into(&g, &sources, &mut rows, &mut ws, 2, &mut work);
        assert_eq!(rows[0], vec![0, 1, 2, INF, INF, INF]);
        assert_eq!(rows[1], vec![2, 1, 0, 1, 2, INF]);
        // Both sources still had live frontiers at the cutoff.
        assert_eq!(truncated, 0b11);
        // Limit 4: source 1 (node 2, eccentricity 3) has fully drained —
        // its last discovery happened at level 3, so by the level-4 cutoff
        // only source 0 still holds a live frontier node.
        let truncated = msbfs_limited_into(&g, &sources, &mut rows, &mut ws, 4, &mut work);
        assert_eq!(truncated, 0b01);
        assert_eq!(rows[0], vec![0, 1, 2, 3, 4, INF]);
        assert_eq!(rows[1], bfs(&g, NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "exceeds WAVE_WIDTH")]
    fn oversized_wave_panics() {
        let g = sample();
        let sources = vec![NodeId(0); WAVE_WIDTH + 1];
        let mut rows = vec![Vec::new(); WAVE_WIDTH + 1];
        msbfs_into(&g, &sources, &mut rows, &mut MsBfsWorkspace::new());
    }
}
