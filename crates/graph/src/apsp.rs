//! Threaded all-pairs shortest-path streaming.
//!
//! The exact ground truth for the experiments (the true top-k converging
//! pairs, the diameter, Δmax) needs a BFS from every node of graphs with
//! 10⁴–10⁵ nodes. Materializing the full `n × n` distance matrix would cost
//! gigabytes, so instead we *stream*: a callback receives each source's
//! distance row and extracts whatever aggregate it needs.
//!
//! Work fans out over the persistent [`cp_exec`] worker pool (spawned
//! once per process, parked between batches); each worker keeps its BFS
//! scratch buffers in its [`cp_exec::WorkerScratch`], so the only shared
//! state is the executor's task ranges and whatever the caller's sink
//! guards itself.

use crate::bfs::{bfs_into, BfsWorkspace};
use crate::dijkstra::dijkstra_into;
use crate::graph::{Graph, NodeId};

/// Cap on [`default_threads`]: BFS row streaming is memory-bound, so
/// returns diminish well before high core counts, and an unbounded default
/// oversubscribes shared machines.
pub const MAX_DEFAULT_THREADS: usize = cp_exec::MAX_DEFAULT_THREADS;

/// Source count below which [`for_each_source`] (and the pairwise variant)
/// runs on the calling thread without waking pool workers.
const INLINE_SOURCE_CUTOFF: usize = 32;

/// Default number of worker threads: the available parallelism, capped at
/// [`MAX_DEFAULT_THREADS`] so tiny graphs and shared machines don't pay
/// wake-up and contention overhead per call.
pub fn default_threads() -> usize {
    cp_exec::default_threads()
}

/// Per-worker persistent scratch for the APSP streamers: the distance
/// row buffers and the BFS workspace live across batches in the
/// executor's [`cp_exec::WorkerScratch`].
#[derive(Default)]
struct ApspScratch {
    d1: Vec<u32>,
    d2: Vec<u32>,
    ws: BfsWorkspace,
}

impl ApspScratch {
    fn row<'a>(
        graph: &Graph,
        src: NodeId,
        dist: &'a mut Vec<u32>,
        ws: &mut BfsWorkspace,
    ) -> &'a [u32] {
        if graph.is_weighted() {
            dijkstra_into(graph, src, dist);
        } else {
            bfs_into(graph, src, dist, ws);
        }
        dist
    }
}

/// Runs `sink(src, distance_row)` for every source node, in parallel.
///
/// Rows arrive in no particular order. `sink` must be `Sync`; use interior
/// locking (e.g. `parking_lot::Mutex`) or atomics for shared accumulation.
/// Weighted graphs use Dijkstra, unweighted use BFS.
pub fn for_each_source<F>(graph: &Graph, threads: usize, sink: F)
where
    F: Fn(NodeId, &[u32]) + Sync,
{
    let n = graph.num_nodes();
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    // Small inputs (or an explicit single thread) run on the calling
    // thread: no pool wake-up, same rows in the same order.
    if threads == 1 || n < INLINE_SOURCE_CUTOFF {
        let mut dist = Vec::new();
        let mut ws = BfsWorkspace::new();
        for i in 0..n {
            let src = NodeId::new(i);
            sink(src, ApspScratch::row(graph, src, &mut dist, &mut ws));
        }
        return;
    }
    let mut slots = vec![(); n];
    cp_exec::global().run(&mut slots, threads, |i, _slot, ctx| {
        let scratch = ctx.scratch.get_or(ApspScratch::default);
        let src = NodeId::new(i);
        sink(
            src,
            ApspScratch::row(graph, src, &mut scratch.d1, &mut scratch.ws),
        );
    });
}

/// Runs `sink(src, row_in_g1, row_in_g2)` for every source, in parallel.
///
/// This is the workhorse for the exact converging-pairs baseline: each
/// source's distance rows in both snapshots are produced together so the
/// sink can compute Δ values without storing either matrix.
pub fn for_each_source_pairwise<F>(g1: &Graph, g2: &Graph, threads: usize, sink: F)
where
    F: Fn(NodeId, &[u32], &[u32]) + Sync,
{
    assert_eq!(
        g1.num_nodes(),
        g2.num_nodes(),
        "snapshots must share a node universe"
    );
    let n = g1.num_nodes();
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 || n < INLINE_SOURCE_CUTOFF {
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        let mut ws = BfsWorkspace::new();
        for i in 0..n {
            let src = NodeId::new(i);
            ApspScratch::row(g1, src, &mut d1, &mut ws);
            ApspScratch::row(g2, src, &mut d2, &mut ws);
            sink(src, &d1, &d2);
        }
        return;
    }
    let mut slots = vec![(); n];
    cp_exec::global().run(&mut slots, threads, |i, _slot, ctx| {
        let scratch = ctx.scratch.get_or(ApspScratch::default);
        let src = NodeId::new(i);
        ApspScratch::row(g1, src, &mut scratch.d1, &mut scratch.ws);
        ApspScratch::row(g2, src, &mut scratch.d2, &mut scratch.ws);
        sink(src, &scratch.d1, &scratch.d2);
    });
}

/// Collects the full distance matrix (row-major, `n × n`). Only sensible for
/// small graphs; tests use it to cross-check the streaming variants.
pub fn full_matrix(graph: &Graph, threads: usize) -> Vec<Vec<u32>> {
    let n = graph.num_nodes();
    let rows: Vec<parking_lot::Mutex<Vec<u32>>> = (0..n)
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();
    for_each_source(graph, threads, |src, dist| {
        *rows[src.index()].lock() = dist.to_vec();
    });
    rows.into_iter().map(|m| m.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::builder::graph_from_edges;
    use parking_lot::Mutex;

    fn sample() -> Graph {
        graph_from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (6, 7)])
    }

    #[test]
    fn matches_sequential_bfs() {
        let g = sample();
        let matrix = full_matrix(&g, 4);
        for (s, row) in matrix.iter().enumerate() {
            assert_eq!(row, &bfs(&g, NodeId::new(s)), "row {s}");
        }
    }

    #[test]
    fn visits_every_source_once() {
        let g = sample();
        let seen = Mutex::new(vec![0u32; g.num_nodes()]);
        for_each_source(&g, 3, |src, _| {
            seen.lock()[src.index()] += 1;
        });
        assert!(seen.into_inner().iter().all(|&c| c == 1));
    }

    #[test]
    fn pairwise_rows_are_consistent() {
        let g1 = graph_from_edges(5, &[(0, 1), (1, 2)]);
        let g2 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 4)]);
        let deltas = Mutex::new(Vec::new());
        for_each_source_pairwise(&g1, &g2, 2, |src, d1, d2| {
            if src == NodeId(0) {
                deltas.lock().extend_from_slice(d1);
                deltas.lock().extend_from_slice(d2);
            }
        });
        let v = deltas.into_inner();
        assert_eq!(&v[..5], bfs(&g1, NodeId(0)).as_slice());
        assert_eq!(&v[5..], bfs(&g2, NodeId(0)).as_slice());
    }

    #[test]
    #[should_panic(expected = "share a node universe")]
    fn mismatched_universe_panics() {
        let g1 = graph_from_edges(3, &[(0, 1)]);
        let g2 = graph_from_edges(4, &[(0, 1)]);
        for_each_source_pairwise(&g1, &g2, 1, |_, _, _| {});
    }

    #[test]
    fn empty_graph_is_noop() {
        let g = graph_from_edges(0, &[]);
        for_each_source(&g, 4, |_, _| panic!("should not be called"));
    }

    #[test]
    fn single_thread_works() {
        let g = sample();
        let count = Mutex::new(0usize);
        for_each_source(&g, 1, |_, _| *count.lock() += 1);
        assert_eq!(count.into_inner(), 8);
    }
}
