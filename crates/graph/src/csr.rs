//! Graph storage views: the `GraphView` trait and the compressed CSR store.
//!
//! The pipeline always traverses a snapshot *pair*, and the kernels only
//! ever need forward adjacency iteration — never edge ids or random arc
//! access. [`GraphView`] captures exactly that surface so the hot kernels
//! (`bfs_*`, `msbfs`, `dijkstra`, repair seeding, `LandmarkIndex::build`)
//! can be written once and monomorphized per store:
//!
//! - [`crate::Graph`] — the reference full CSR (`full` store),
//! - [`crate::OverlayGraph`] — borrowed base CSR + O(Δ) insertion overlay
//!   (`overlay` store),
//! - [`CompressedCsr`] — delta-gap varint adjacency (`compressed` store).
//!
//! [`GraphViewRef`] is a `Copy` enum over the three; callers match it once
//! at a kernel entry point (enum dispatch) so the per-arc inner loops stay
//! branch-free and monomorphic.

use crate::graph::{Graph, NodeId};
use crate::overlay::OverlayGraph;
use crate::varint;

/// Read-only adjacency surface shared by all snapshot storage layouts.
///
/// Implementations must present the *same logical graph* shape: sorted,
/// deduplicated neighbor lists visited in ascending order. The budget
/// oracle relies on that ordering to keep traversal work counters (not
/// just distances) bit-identical across stores.
pub trait GraphView {
    /// Number of nodes (including isolated ones).
    fn num_nodes(&self) -> usize;
    /// Number of directed arcs (2× the undirected edge count).
    fn num_arcs(&self) -> usize;
    /// Degree of `u`.
    fn degree(&self, u: NodeId) -> usize;
    /// Whether arcs carry non-unit weights.
    fn is_weighted(&self) -> bool;
    /// Calls `f` for every neighbor of `u`, in ascending node order.
    fn for_each_neighbor(&self, u: NodeId, f: impl FnMut(NodeId));
    /// Calls `f` for neighbors of `u` in ascending order until `f` returns
    /// `true`; returns whether any did. Used by the bottom-up BFS sweep to
    /// stop at the first frontier parent.
    fn any_neighbor(&self, u: NodeId, f: impl FnMut(NodeId) -> bool) -> bool;
    /// Calls `f(v, w)` for every neighbor of `u` with the arc weight, in
    /// ascending node order. Unweighted stores report `w = 1`.
    fn for_each_neighbor_weighted(&self, u: NodeId, f: impl FnMut(NodeId, u32));
    /// Heap bytes owned by this store (shared/borrowed structure excluded).
    fn heap_bytes(&self) -> usize;
}

impl GraphView for Graph {
    #[inline]
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        Graph::num_arcs(self)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        Graph::degree(self, u)
    }

    #[inline]
    fn is_weighted(&self) -> bool {
        Graph::is_weighted(self)
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        for &v in self.neighbors(u) {
            f(v);
        }
    }

    #[inline]
    fn any_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId) -> bool) -> bool {
        for &v in self.neighbors(u) {
            if f(v) {
                return true;
            }
        }
        false
    }

    #[inline]
    fn for_each_neighbor_weighted(&self, u: NodeId, mut f: impl FnMut(NodeId, u32)) {
        for (v, e) in self.neighbors_with_edge_ids(u) {
            f(v, self.edge_weight(e));
        }
    }

    #[inline]
    fn heap_bytes(&self) -> usize {
        Graph::heap_bytes(self)
    }
}

/// A `Copy` reference to any of the three snapshot stores.
///
/// The oracle holds one per snapshot and matches it **once** per kernel
/// invocation (see `with_view!` in cp-core), so the traversal inner loops
/// are monomorphized per store rather than virtually dispatched per arc.
#[derive(Clone, Copy)]
pub enum GraphViewRef<'v> {
    /// The reference full CSR.
    Full(&'v Graph),
    /// Base CSR shared with t1 plus an O(Δ) insertion overlay.
    Overlay(&'v OverlayGraph<'v>),
    /// Delta-gap varint compressed adjacency.
    Compressed(&'v CompressedCsr),
}

impl GraphViewRef<'_> {
    /// Short name of the active store, for stats and logs.
    pub fn store_name(&self) -> &'static str {
        match self {
            GraphViewRef::Full(_) => "full",
            GraphViewRef::Overlay(_) => "overlay",
            GraphViewRef::Compressed(_) => "compressed",
        }
    }

    /// Heap bytes owned by the active store.
    pub fn heap_bytes(&self) -> usize {
        match self {
            GraphViewRef::Full(g) => GraphView::heap_bytes(*g),
            GraphViewRef::Overlay(g) => g.heap_bytes(),
            GraphViewRef::Compressed(g) => g.heap_bytes(),
        }
    }
}

/// Delta-gap varint compressed CSR.
///
/// Each adjacency list is encoded as the first target absolute followed by
/// strictly positive gaps (`v_k - v_{k-1}`), all as LEB128 varints
/// ([`crate::varint`]). A decode "block" is one adjacency run: kernels
/// stream-decode a node's list directly into their per-worker traversal
/// state, so no decode buffer is materialized. Edge ids are *not* stored —
/// weighted traversal carries the per-arc weight inline — which is the
/// other half of the memory win over the full CSR (`targets` + `arc_edge`
/// cost 8 bytes/arc there).
pub struct CompressedCsr {
    /// Byte offset of each node's encoded run in `data` (`n + 1` entries).
    byte_offsets: Vec<u32>,
    /// Degree of each node (`n` entries).
    degrees: Vec<u32>,
    /// Concatenated varint-encoded adjacency runs.
    data: Vec<u8>,
    /// Per-arc weights in decode order, for weighted graphs only.
    arc_weights: Option<Vec<u32>>,
    /// Arc offset of each node (`n + 1` entries), only kept when weighted.
    arc_offsets: Option<Vec<u32>>,
    num_nodes: usize,
    num_edges: usize,
}

impl CompressedCsr {
    /// Encodes `graph` into the compressed layout.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let weighted = graph.is_weighted();
        let mut byte_offsets = Vec::with_capacity(n + 1);
        let mut degrees = Vec::with_capacity(n);
        let mut data = Vec::new();
        let mut arc_weights = if weighted {
            Some(Vec::with_capacity(graph.num_arcs()))
        } else {
            None
        };
        let mut arc_offsets = if weighted {
            Some(Vec::with_capacity(n + 1))
        } else {
            None
        };
        for u in 0..n {
            let u = NodeId::new(u);
            byte_offsets.push(u32::try_from(data.len()).expect("adjacency data exceeds 4 GiB"));
            if let Some(offs) = arc_offsets.as_mut() {
                offs.push(arc_weights.as_ref().map_or(0, Vec::len) as u32);
            }
            degrees.push(graph.degree(u) as u32);
            let mut prev = 0u32;
            for (k, (v, e)) in graph.neighbors_with_edge_ids(u).enumerate() {
                let raw = v.index() as u32;
                let val = if k == 0 { raw } else { raw - prev };
                debug_assert!(k == 0 || val >= 1, "adjacency must be strictly sorted");
                varint::encode_u32(val, &mut data);
                prev = raw;
                if let Some(ws) = arc_weights.as_mut() {
                    ws.push(graph.edge_weight(e));
                }
            }
        }
        byte_offsets.push(u32::try_from(data.len()).expect("adjacency data exceeds 4 GiB"));
        if let Some(offs) = arc_offsets.as_mut() {
            offs.push(arc_weights.as_ref().map_or(0, Vec::len) as u32);
        }
        data.shrink_to_fit();
        CompressedCsr {
            byte_offsets,
            degrees,
            data,
            arc_weights,
            arc_offsets,
            num_nodes: n,
            num_edges: graph.num_edges(),
        }
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Average stored bytes per directed arc (structure only for
    /// unweighted graphs; includes inline weights for weighted ones).
    pub fn bytes_per_arc(&self) -> f64 {
        let arcs = GraphView::num_arcs(self);
        if arcs == 0 {
            return 0.0;
        }
        self.heap_bytes() as f64 / arcs as f64
    }
}

impl GraphView for CompressedCsr {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        2 * self.num_edges
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        self.degrees[u.index()] as usize
    }

    #[inline]
    fn is_weighted(&self) -> bool {
        self.arc_weights.is_some()
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        let mut pos = self.byte_offsets[u.index()] as usize;
        let deg = self.degrees[u.index()];
        let mut prev = 0u32;
        for k in 0..deg {
            let val = varint::decode_u32(&self.data, &mut pos);
            prev = if k == 0 { val } else { prev + val };
            f(NodeId::new(prev as usize));
        }
    }

    #[inline]
    fn any_neighbor(&self, u: NodeId, mut f: impl FnMut(NodeId) -> bool) -> bool {
        let mut pos = self.byte_offsets[u.index()] as usize;
        let deg = self.degrees[u.index()];
        let mut prev = 0u32;
        for k in 0..deg {
            let val = varint::decode_u32(&self.data, &mut pos);
            prev = if k == 0 { val } else { prev + val };
            if f(NodeId::new(prev as usize)) {
                return true;
            }
        }
        false
    }

    #[inline]
    fn for_each_neighbor_weighted(&self, u: NodeId, mut f: impl FnMut(NodeId, u32)) {
        let mut pos = self.byte_offsets[u.index()] as usize;
        let deg = self.degrees[u.index()];
        let mut prev = 0u32;
        match (&self.arc_weights, &self.arc_offsets) {
            (Some(ws), Some(offs)) => {
                let base = offs[u.index()] as usize;
                for k in 0..deg {
                    let val = varint::decode_u32(&self.data, &mut pos);
                    prev = if k == 0 { val } else { prev + val };
                    f(NodeId::new(prev as usize), ws[base + k as usize]);
                }
            }
            _ => {
                for k in 0..deg {
                    let val = varint::decode_u32(&self.data, &mut pos);
                    prev = if k == 0 { val } else { prev + val };
                    f(NodeId::new(prev as usize), 1);
                }
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.byte_offsets.len() * std::mem::size_of::<u32>()
            + self.degrees.len() * std::mem::size_of::<u32>()
            + self.data.len()
            + self
                .arc_weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<u32>())
            + self
                .arc_offsets
                .as_ref()
                .map_or(0, |o| o.len() * std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [(0, 1), (0, 2), (0, 7), (1, 2), (2, 3), (3, 4), (5, 6)] {
            b.add_edge(NodeId::new(u), NodeId::new(v));
        }
        b.build()
    }

    fn collect<V: GraphView>(g: &V, u: usize) -> Vec<usize> {
        let mut out = Vec::new();
        g.for_each_neighbor(NodeId::new(u), |v| out.push(v.index()));
        out
    }

    #[test]
    fn compressed_matches_full_adjacency() {
        let g = sample_graph();
        let c = CompressedCsr::from_graph(&g);
        assert_eq!(GraphView::num_nodes(&c), g.num_nodes());
        assert_eq!(GraphView::num_arcs(&c), g.num_arcs());
        assert!(!GraphView::is_weighted(&c));
        for u in 0..g.num_nodes() {
            assert_eq!(
                GraphView::degree(&c, NodeId::new(u)),
                g.degree(NodeId::new(u))
            );
            let full: Vec<usize> = g
                .neighbors(NodeId::new(u))
                .iter()
                .map(|v| v.index())
                .collect();
            assert_eq!(collect(&c, u), full, "node {u}");
        }
    }

    #[test]
    fn compressed_weighted_iteration_reports_weights() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 5);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(2), 3);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(3), 9);
        let g = b.build();
        let c = CompressedCsr::from_graph(&g);
        assert!(GraphView::is_weighted(&c));
        for u in 0..g.num_nodes() {
            let mut full = Vec::new();
            g.for_each_neighbor_weighted(NodeId::new(u), |v, w| full.push((v.index(), w)));
            let mut comp = Vec::new();
            c.for_each_neighbor_weighted(NodeId::new(u), |v, w| comp.push((v.index(), w)));
            assert_eq!(comp, full, "node {u}");
        }
    }

    #[test]
    fn any_neighbor_stops_early() {
        let g = sample_graph();
        let c = CompressedCsr::from_graph(&g);
        let mut probes = 0;
        let hit = c.any_neighbor(NodeId::new(0), |v| {
            probes += 1;
            v.index() == 2
        });
        assert!(hit);
        assert_eq!(probes, 2, "must stop at the first match");
        assert!(!c.any_neighbor(NodeId::new(5), |v| v.index() == 0));
    }

    #[test]
    fn compressed_is_smaller_than_full() {
        let mut b = GraphBuilder::new(512);
        for u in 0..511usize {
            b.add_edge(NodeId::new(u), NodeId::new(u + 1));
            b.add_edge(NodeId::new(u), NodeId::new((u * 7 + 13) % 512));
        }
        let g = b.build();
        let c = CompressedCsr::from_graph(&g);
        let full_bytes = GraphView::heap_bytes(&g) as f64;
        let comp_bytes = c.heap_bytes() as f64;
        assert!(
            comp_bytes <= 0.6 * full_bytes,
            "compressed {comp_bytes}B vs full {full_bytes}B"
        );
    }
}
